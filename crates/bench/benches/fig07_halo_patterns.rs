//! Figure 7: redundant memory access of 1:4 (rectangle) vs 1:1 (square)
//! planar partition patterns in two convolution layers at 512x512 input.
//!
//! The paper reports up to ~650 % extra access for the 7x7/s2 ResNet-50
//! conv1 under fine partitioning, a smaller overhead for the 3x3 VGG-16
//! layer, and a square-over-rectangle advantage that narrows as tiles grow.

use baton_bench::{header, pct};
use nn_baton::model::{planar_redundancy, PlanarGrid};
use nn_baton::prelude::*;

fn main() {
    header(
        "Figure 7",
        "redundant input access vs tile count, square (1:1) vs rectangle (1:4)",
    );
    let resnet_conv1 = zoo::resnet50(512).layer("conv1").cloned().unwrap();
    let vgg_conv = zoo::vgg16(512).layer("conv2_1").cloned().unwrap();

    for (title, layer) in [
        ("ResNet-50 conv1 (7x7, s2)", &resnet_conv1),
        ("VGG-16 3x3 conv (s1)", &vgg_conv),
    ] {
        println!("\n{title}: output plane {}x{}", layer.ho(), layer.wo());
        println!(
            "{:>8} {:>14} {:>14} {:>10}",
            "#tiles", "square 1:1", "rect 1:4", "gap"
        );
        for tiles in [4u32, 16, 64, 256, 1024, 4096, 16384] {
            let side = (tiles as f64).sqrt() as u32;
            let square = planar_redundancy(layer, PlanarGrid::new(side, side));
            // 1:4 aspect with the same tile count.
            let r = (tiles as f64 / 4.0).sqrt().round().max(1.0) as u32;
            let rect = planar_redundancy(layer, PlanarGrid::new(r, tiles / r.max(1)));
            println!(
                "{:>8} {:>14} {:>14} {:>9.1}pp",
                tiles,
                pct(square.overhead()),
                pct(rect.overhead()),
                100.0 * (rect.overhead() - square.overhead())
            );
        }
    }
    println!(
        "\nexpected shape: overheads grow with tile count (the 7x7/s2 layer \
         crosses the paper's ~650% between the 16k-tile and single-pixel \
         granularities), square <= rectangle everywhere, and the gap narrows \
         for coarse partitions."
    );
}
