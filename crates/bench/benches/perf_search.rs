//! Criterion benches of the parallel search engine on AlexNet: the
//! branch-and-bound `search_layer` on single layers, the memoized
//! `map_model` whole-network flow, and a shrunken `full_sweep` grid.
//!
//! Thread count follows `BATON_THREADS` (default: all cores), so the same
//! bench binary measures both the sequential fast path and the scaled
//! executor:
//!
//! ```text
//! BATON_THREADS=1 cargo bench -p baton-bench --bench perf_search
//! BATON_THREADS=4 cargo bench -p baton-bench --bench perf_search
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use nn_baton::prelude::*;
use std::hint::black_box;

fn setup() -> (PackageConfig, Technology, Model) {
    (
        presets::case_study_accelerator(),
        Technology::paper_16nm(),
        zoo::alexnet(224),
    )
}

/// Branch-and-bound search over one large-kernel layer (11x11 conv1): wide
/// candidate set, strong pruning opportunity.
fn bench_search_conv1(c: &mut Criterion) {
    let (arch, tech, model) = setup();
    let layer = model.layer("conv1").cloned().unwrap();
    c.bench_function("search_alexnet_conv1", |b| {
        b.iter(|| search_layer(black_box(&layer), &arch, &tech, Objective::Energy).unwrap())
    });
}

/// The 3x3 workhorse layer (conv3) under the EDP objective, whose floor
/// combines both energy and runtime bounds.
fn bench_search_conv3_edp(c: &mut Criterion) {
    let (arch, tech, model) = setup();
    let layer = model.layer("conv3").cloned().unwrap();
    c.bench_function("search_alexnet_conv3_edp", |b| {
        b.iter(|| search_layer(black_box(&layer), &arch, &tech, Objective::Edp).unwrap())
    });
}

/// Whole-model post-design flow: eight layers through the shape-memoized
/// per-layer search.
fn bench_map_model(c: &mut Criterion) {
    let (arch, tech, model) = setup();
    c.bench_function("map_model_alexnet", |b| {
        b.iter(|| map_model(black_box(&model), &arch, &tech).unwrap())
    });
}

/// A pre-design sweep on a shrunken Table II grid (one O-L1 rung, short
/// memory ladders) so one iteration stays in criterion budget while still
/// fanning `(geometry, o_l1)` units across the executor.
fn bench_full_sweep(c: &mut Criterion) {
    let (_, tech, model) = setup();
    let mut opts = SweepOptions {
        total_macs: 1024,
        ..SweepOptions::default()
    };
    opts.space.memory.o_l1 = vec![96];
    opts.space.memory.a_l1 = vec![4 * 1024, 16 * 1024];
    opts.space.memory.w_l1 = vec![18 * 1024, 72 * 1024];
    opts.space.memory.a_l2 = vec![64 * 1024];
    c.bench_function("full_sweep_alexnet_small", |b| {
        b.iter(|| full_sweep(black_box(&model), &tech, &opts).len())
    });
    // The retained materialized path on the same grid: the streaming /
    // reference ratio here is the sweep-repricer speedup the committed
    // `results/BENCH_sweep.json` gate floors (bit-identical results — see
    // the sweep-equivalence harness).
    c.bench_function("full_sweep_reference_alexnet_small", |b| {
        b.iter(|| nn_baton::dse::full_sweep_reference(black_box(&model), &tech, &opts).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search_conv1, bench_search_conv3_edp, bench_map_model, bench_full_sweep
}
criterion_main!(benches);
