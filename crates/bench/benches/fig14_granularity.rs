//! Figure 14: chiplet granularity exploration with 2048 MAC units.
//!
//! Every Table II computation geometry with an exact 2048-MAC product is
//! assembled with buffers proportional to compute and mapped on four typical
//! models. Paper shape: energy generally grows with the chiplet count when
//! no area constraint applies; under a 2 mm^2 chiplet budget no 1-chiplet
//! implementation fits and the 4-4-16-8 scheme is the top EDP pick.

use baton_bench::header;
use nn_baton::arch::presets::ProportionalBuffers;
use nn_baton::prelude::*;

const AREA_LIMIT: f64 = 2.0;

fn main() {
    header(
        "Figure 14",
        "2048-MAC implementations, 2 mm^2 chiplet budget",
    );
    let tech = Technology::paper_16nm();
    let models = [
        zoo::alexnet(224),
        zoo::vgg16(224),
        zoo::resnet50(224),
        zoo::darknet19(224),
    ];
    for model in &models {
        println!("\n--- {model}");
        let results = granularity_sweep(
            model,
            &tech,
            2048,
            &ProportionalBuffers::default(),
            Some(AREA_LIMIT),
        );
        // Best per chiplet count, with and without the area constraint.
        println!(
            "{:>4} {:>18} {:>12} {:>18} {:>12} {:>12}",
            "N_P", "best w/o area", "energy uJ", "best w/ 2mm^2", "energy uJ", "EDP J*s"
        );
        for np in [1u32, 2, 4, 8] {
            let unconstrained = results
                .iter()
                .filter(|r| r.geometry.0 == np)
                .min_by(|a, b| a.energy_pj.total_cmp(&b.energy_pj));
            let constrained = results
                .iter()
                .filter(|r| r.geometry.0 == np && r.meets_area)
                .min_by(|a, b| a.edp(&tech).total_cmp(&b.edp(&tech)));
            let fmt_geo = |g: (u32, u32, u32, u32)| format!("{}-{}-{}-{}", g.0, g.1, g.2, g.3);
            match (unconstrained, constrained) {
                (Some(u), Some(c)) => println!(
                    "{np:>4} {:>18} {:>12.1} {:>18} {:>12.1} {:>12.3e}",
                    fmt_geo(u.geometry),
                    u.energy_pj / 1e6,
                    fmt_geo(c.geometry),
                    c.energy_pj / 1e6,
                    c.edp(&tech)
                ),
                (Some(u), None) => println!(
                    "{np:>4} {:>18} {:>12.1} {:>18} {:>12} {:>12}",
                    fmt_geo(u.geometry),
                    u.energy_pj / 1e6,
                    "none fits",
                    "-",
                    "-"
                ),
                _ => println!("{np:>4} no feasible implementation"),
            }
        }
        if let Some(best) = results
            .iter()
            .filter(|r| r.meets_area)
            .min_by(|a, b| a.edp(&tech).total_cmp(&b.edp(&tech)))
        {
            println!(
                "==> lowest-EDP implementation under {AREA_LIMIT} mm^2: \
                 {}-{}-{}-{} ({:.2} mm^2, {:.1} uJ, {} cycles)",
                best.geometry.0,
                best.geometry.1,
                best.geometry.2,
                best.geometry.3,
                best.chiplet_area_mm2,
                best.energy_pj / 1e6,
                best.cycles
            );
        }
    }
}
