//! Figure 15: full design-space exploration for 4096-MAC multichip
//! accelerators under a 3 mm^2 chiplet-area constraint.
//!
//! Paper shape: the valid points layer by chiplet count in the (area, EDP)
//! plane (1-chiplet designs lower-right, more chiplets toward upper-left);
//! under the area constraint the optimum computation allocation is the
//! 2-chiplet / 8-core / 16-lane / 16-wide configuration for all three
//! benchmarks, while the recommended memory allocation differs per model.

use baton_bench::header;
use nn_baton::prelude::*;

fn main() {
    header("Figure 15", "4096-MAC DSE, 3 mm^2 chiplet constraint");
    let tech = Technology::paper_16nm();
    let opts = SweepOptions::default();
    let benchmarks = [zoo::darknet19(224), zoo::vgg16(512), zoo::resnet50(512)];

    println!(
        "sweep: {} geometries x {} memory configs = {} candidate designs per model",
        opts.space.compute.geometries_for(opts.total_macs).len(),
        opts.space.memory.len(),
        opts.space.sweep_size(opts.total_macs),
    );

    for model in &benchmarks {
        let t0 = std::time::Instant::now();
        let points = full_sweep(model, &tech, &opts);
        println!(
            "\n--- {model}: {} valid points ({:.1} s)",
            points.len(),
            t0.elapsed().as_secs_f64()
        );

        // Layering by chiplet count: area range and best EDP per N_P.
        println!(
            "{:>4} {:>8} {:>22} {:>14} {:>14}",
            "N_P", "points", "chiplet area mm^2", "best EDP J*s", "best energy uJ"
        );
        for np in [1u32, 2, 4, 8] {
            let sel: Vec<&DesignPoint> = points.iter().filter(|p| p.geometry.0 == np).collect();
            if sel.is_empty() {
                continue;
            }
            let amin = sel
                .iter()
                .map(|p| p.chiplet_area_mm2)
                .fold(f64::MAX, f64::min);
            let amax = sel
                .iter()
                .map(|p| p.chiplet_area_mm2)
                .fold(f64::MIN, f64::max);
            let best_edp = sel.iter().map(|p| p.edp(&tech)).fold(f64::MAX, f64::min);
            let best_e = sel.iter().map(|p| p.energy_pj).fold(f64::MAX, f64::min);
            println!(
                "{np:>4} {:>8} {:>10.2} - {:>8.2} {:>14.3e} {:>14.1}",
                sel.len(),
                amin,
                amax,
                best_edp,
                best_e / 1e6
            );
        }

        // The optimum under the area constraint.
        let limit = opts.area_limit_mm2.unwrap_or(f64::MAX);
        if let Some(best) = points
            .iter()
            .filter(|p| p.chiplet_area_mm2 <= limit)
            .min_by(|a, b| a.edp(&tech).total_cmp(&b.edp(&tech)))
        {
            let (np, nc, l, p) = best.geometry;
            let (o1, a1, w1, a2) = best.memory;
            println!(
                "==> optimum under {limit} mm^2: {np}-chiplet {nc}-core {l}-lane \
                 {p}-vector ({:.2} mm^2)",
                best.chiplet_area_mm2
            );
            println!(
                "    memory: O-L1 {o1} B, A-L1 {} KB, W-L1 {} KB, A-L2 {} KB",
                a1 / 1024,
                w1 / 1024,
                a2 / 1024
            );
        }

        // The Pareto front of the (area, EDP) scatter.
        let front = pareto_front(&points, |p| (p.chiplet_area_mm2, p.edp(&tech)));
        println!(
            "    Pareto front: {} of {} points",
            front.len(),
            points.len()
        );
    }
}
