//! Figure 8: halo sharing degree of the package-level partition patterns.
//!
//! A square 2x2 chiplet split creates a central halo region read by all four
//! chiplets (a DRAM access conflict); a rectangle 4x1 split caps the sharing
//! degree at two, which is why the paper prefers the rectangle pattern for
//! the package-level spatial primitive.

use baton_bench::header;
use nn_baton::model::{max_sharing_degree, planar_redundancy, PlanarGrid};
use nn_baton::prelude::*;

fn main() {
    header(
        "Figure 8",
        "package partition pattern vs DRAM sharing degree (4 chiplets)",
    );
    let layers = [
        (
            "VGG-16 conv2_1 @512",
            zoo::vgg16(512).layer("conv2_1").cloned().unwrap(),
        ),
        (
            "ResNet-50 conv1 @512",
            zoo::resnet50(512).layer("conv1").cloned().unwrap(),
        ),
        (
            "res2a_branch2b @224",
            zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap(),
        ),
    ];
    println!(
        "{:<24} {:>12} {:>14} {:>12} {:>14}",
        "layer", "square 2x2", "(redundancy)", "rect 4x1", "(redundancy)"
    );
    for (name, layer) in layers {
        let sq = PlanarGrid::new(2, 2);
        let rc = PlanarGrid::new(4, 1);
        println!(
            "{:<24} {:>10} ch {:>13.2}% {:>10} ch {:>13.2}%",
            name,
            max_sharing_degree(&layer, sq),
            100.0 * planar_redundancy(&layer, sq).overhead(),
            max_sharing_degree(&layer, rc),
            100.0 * planar_redundancy(&layer, rc).overhead(),
        );
    }
    println!(
        "\nexpected shape: the square pattern shares its central halo among 4 \
         chiplets while the rectangle caps sharing at 2, at a slightly higher \
         redundant-access cost -- the paper's motivation for rectangle \
         package-level partitions with square temporal tiles."
    );
}
