//! Extension study: the Simba baseline at its real prototype scale.
//!
//! The paper's comparison uses a 4-chiplet configuration; the actual Simba
//! silicon scales to 36 chiplets on a 6x6 mesh. This study evaluates the
//! weight-centric baseline from 1 to 36 chiplets (resources scaled per
//! chiplet as in the prototype) to show how partial-sum NoP traffic grows
//! with the mesh.

use baton_bench::header;
use nn_baton::arch::{ChipletConfig, CoreConfig, PackageConfig};
use nn_baton::prelude::*;

fn main() {
    header(
        "Extension",
        "Simba weight-centric baseline vs chiplet count",
    );
    let tech = Technology::paper_16nm();
    let layer = zoo::resnet50(224).layer("res3a_branch2b").cloned().unwrap();
    println!("layer: {layer}");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "chips", "MACs", "energy uJ", "d2d uJ", "cycles", "util"
    );
    for chips in [1u32, 4, 9, 16, 36] {
        // Simba-like chiplet: 16 cores ... here the case-study core so the
        // per-chiplet resources stay comparable with the rest of the repo.
        let core = CoreConfig::new(8, 8, 1536, 800, 18 * 1024);
        let chiplet = ChipletConfig::new(4, core, 64 * 1024, 32 * 1024);
        let arch = PackageConfig::new(chips.clamp(1, 8), chiplet).with_dram_channels(4);
        // The ring model covers up to 8 chiplets; beyond that we scale the
        // mesh geometry directly through the Simba evaluator, which only
        // needs the grid shape.
        let mut arch = arch;
        arch.chiplets = chips;
        let ev = evaluate_simba(&layer, &arch, &tech);
        println!(
            "{:>6} {:>10} {:>12.1} {:>12.1} {:>12} {:>9.1}%",
            chips,
            arch.total_macs(),
            ev.energy.total_uj(),
            ev.energy.d2d_pj / 1e6,
            ev.cycles,
            100.0 * ev.utilization
        );
    }
    println!(
        "\nexpected shape: die-to-die energy grows with the mesh (longer \
         partial-sum reduction chains across chiplet rows) while utilization \
         falls as the channel dimensions fragment -- the scaling pain Simba's \
         own paper reports and NN-Baton's output-centric dataflow avoids."
    );
}
