//! Ablation: the rotating-transfer primitive (ring sharing) vs loading every
//! shared tensor from DRAM directly.
//!
//! DESIGN.md calls out the rotation as a core design choice; this ablation
//! quantifies its value per layer type. Expected: large savings on layers
//! whose shared tensor is big (activation-intensive layers under C-type
//! package partitions), shrinking for weight-heavy layers whose shared
//! weights are loaded once anyway.

use baton_bench::{header, pct};
use nn_baton::c3p;
use nn_baton::mapping::enumerate::{candidates_with, EnumOptions};
use nn_baton::prelude::*;

fn best_with(
    layer: &ConvSpec,
    arch: &PackageConfig,
    tech: &Technology,
    rotations: &'static [RotationMode],
) -> f64 {
    let opts = EnumOptions {
        rotations,
        ..EnumOptions::default()
    };
    let mut best = f64::MAX;
    for m in candidates_with(layer, arch, opts) {
        if let Ok(ev) = c3p::evaluate(layer, arch, tech, &m) {
            best = best.min(ev.energy.total_pj());
        }
    }
    best
}

fn main() {
    header("Ablation", "rotating ring transfer vs DRAM-only sharing");
    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "layer", "with ring", "dram-only", "benefit"
    );
    for res in [224u32, 512] {
        for (bucket, layer) in zoo::representative_layers(res) {
            let ring = best_with(
                &layer,
                &arch,
                &tech,
                &[RotationMode::Ring, RotationMode::DramOnly],
            );
            let dram = best_with(&layer, &arch, &tech, &[RotationMode::DramOnly]);
            println!(
                "{:<22} {:>12.1} {:>12.1} {:>10}",
                format!("{bucket}@{res}"),
                ring / 1e6,
                dram / 1e6,
                pct(1.0 - ring / dram)
            );
        }
    }
}
