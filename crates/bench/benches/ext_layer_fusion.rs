//! Extension study: inter-layer activation forwarding.
//!
//! The paper maps layer-wise (every intermediate tensor round-trips DRAM)
//! and cites Tangram's cascaded processing as the alternative. This study
//! quantifies how much the NN-Baton machine could save by keeping
//! shape-exact intermediate tensors in the package's aggregate A-L2.

use baton_bench::{header, pct};
use nn_baton::dse::fusion_analysis;
use nn_baton::prelude::*;

fn main() {
    header(
        "Extension",
        "inter-layer activation forwarding vs layer-wise mapping",
    );
    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    println!(
        "{:>12} {:>6} {:>8} {:>14} {:>14} {:>8}",
        "model", "input", "links", "layer-wise uJ", "forwarded uJ", "saving"
    );
    for res in [224u32, 512] {
        for model in [zoo::vgg16(res), zoo::resnet50(res), zoo::darknet19(res)] {
            let report = map_model(&model, &arch, &tech).expect("model maps");
            let f = fusion_analysis(&model, &arch, &tech, &report);
            println!(
                "{:>12} {:>6} {:>8} {:>14.1} {:>14.1} {:>8}",
                model.name(),
                res,
                f.links.len(),
                f.baseline.total_uj(),
                f.fused.total_uj(),
                pct(f.saving())
            );
        }
    }
    println!(
        "\nexpected shape: late, small feature maps chain on-package while \
         early large maps and pool boundaries stay layer-wise; savings are a \
         single-digit to low-double-digit percentage of model energy -- a \
         meaningful but secondary lever next to the mapping itself."
    );
}
