//! Table I: energy overhead and characters of typical operations in the
//! 16 nm multichip system.

use baton_bench::header;
use nn_baton::arch::EnergyModel;

fn main() {
    header("Table I", "energy per operation (16 nm)");
    let e = EnergyModel::paper_16nm();
    let rows: [(&str, f64, &str); 6] = [
        ("DRAM access", e.dram_pj_per_bit, "pJ/bit"),
        ("Die-to-die (GRS)", e.d2d_pj_per_bit, "pJ/bit"),
        (
            "L2 access (32KB SRAM)",
            e.sram_access_pj_per_bit(32 * 1024),
            "pJ/bit",
        ),
        (
            "L1 access (1KB SRAM)",
            e.sram_access_pj_per_bit(1024),
            "pJ/bit",
        ),
        ("Register RMW", e.rf_rmw_pj_per_bit, "pJ/bit"),
        ("8-bit MAC", e.mac_pj_per_op, "pJ/op"),
    ];
    println!(
        "{:<24} {:>10} {:>8} {:>12}",
        "operation", "energy", "unit", "rel. cost"
    );
    for (name, energy, unit) in rows {
        println!(
            "{:<24} {:>10.3} {:>8} {:>11.2}x",
            name,
            energy,
            unit,
            e.relative_cost(energy)
        );
    }
    println!(
        "\npaper values: 8.75 / 1.17 / 0.81 / 0.3 / 0.104 / 0.024 with relative \
         costs 364.58x / 53.75x / 33.75x / 12.5x / 4.3x / 1x"
    );
    println!(
        "note: 1.17 / 0.024 = 48.75x; the paper's printed 53.75x appears to be a \
         typographical slip (see EXPERIMENTS.md)."
    );
}
