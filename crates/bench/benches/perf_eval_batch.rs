//! Criterion micro-benches of the batched struct-of-arrays evaluation
//! engine against the scalar reference scan — the speedup figure the
//! `results/BENCH_soa.json` CI gate pins at the macro level.
//!
//! Three views of the same AlexNet conv2-shaped layer:
//!
//! * `eval_batch_search` — the production path: visitor enumeration into
//!   reused buffers, geometry memo, SoA floor lanes, streaming penalty
//!   resolution, branch-and-bound pruning;
//! * `eval_scalar_reference` — one `decompose` + materialized profile
//!   build per candidate, no pruning (the pre-batch engine's cost shape);
//! * `eval_batch_k_best` — the no-pruning batched path, isolating the
//!   memo + zero-allocation win from the branch-and-bound win.
//!
//! Thread count follows `BATON_THREADS`; run with `BATON_THREADS=1` for
//! the steady-state single-worker comparison the allocation gate measures.

use criterion::{criterion_group, criterion_main, Criterion};
use nn_baton::c3p::{search_layer_k_best, search_layer_reference};
use nn_baton::mapping::enumerate::EnumOptions;
use nn_baton::model::ConvSpec;
use nn_baton::prelude::*;
use std::hint::black_box;

fn setup() -> (PackageConfig, Technology, ConvSpec) {
    (
        presets::case_study_accelerator(),
        Technology::paper_16nm(),
        ConvSpec::new("conv2", 27, 27, 64, 5, 1, 2, 192).expect("valid layer"),
    )
}

/// The production batched branch-and-bound search.
fn bench_batch_search(c: &mut Criterion) {
    let (arch, tech, layer) = setup();
    c.bench_function("eval_batch_search", |b| {
        b.iter(|| search_layer(black_box(&layer), &arch, &tech, Objective::Energy).unwrap())
    });
}

/// The scalar ground-truth scan the batched engine is gated against.
fn bench_scalar_reference(c: &mut Criterion) {
    let (arch, tech, layer) = setup();
    c.bench_function("eval_scalar_reference", |b| {
        b.iter(|| {
            search_layer_reference(
                black_box(&layer),
                &arch,
                &tech,
                Objective::Energy,
                EnumOptions::default(),
            )
            .unwrap()
        })
    });
}

/// The batched engine with pruning disabled (every feasible candidate
/// evaluated): memoization + streaming resolve in isolation.
fn bench_batch_k_best(c: &mut Criterion) {
    let (arch, tech, layer) = setup();
    c.bench_function("eval_batch_k_best", |b| {
        b.iter(|| {
            search_layer_k_best(black_box(&layer), &arch, &tech, Objective::Energy, 1).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_batch_search,
    bench_scalar_reference,
    bench_batch_k_best
);
criterion_main!(benches);
