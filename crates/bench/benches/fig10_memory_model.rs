//! Figure 10: the linear relationship between memory size and overhead
//! (area and access energy), which licenses extending the memory search by
//! linear regression.

use baton_bench::header;
use nn_baton::arch::{AreaModel, EnergyModel, LinearFit};

fn main() {
    header(
        "Figure 10",
        "memory size vs area and energy (16 nm, linear fits)",
    );
    let e = EnergyModel::paper_16nm();
    let a = AreaModel::paper_16nm();

    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "size KB", "SRAM pJ/bit", "SRAM area um^2", "RF area um^2"
    );
    let mut pts_energy = Vec::new();
    let mut pts_area = Vec::new();
    for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
        let bytes = kb * 1024;
        let pj = e.sram_access_pj_per_bit(bytes);
        let um2 = a.sram_mm2(bytes) * 1e6;
        pts_energy.push((kb as f64, pj));
        pts_area.push((kb as f64, um2));
        println!(
            "{:>10} {:>16.3} {:>16.0} {:>14.0}",
            kb,
            pj,
            um2,
            a.rf_mm2(bytes) * 1e6
        );
    }

    // Verify the "approximately linear" claim by regressing the sampled
    // points back and reporting the residuals.
    let fe = LinearFit::least_squares(&pts_energy);
    let fa = LinearFit::least_squares(&pts_area);
    println!(
        "\nenergy fit: {:.4} + {:.5} * KB (Table I anchors: 1KB -> 0.3, 32KB -> 0.81)",
        fe.intercept, fe.slope
    );
    println!(
        "area fit:   {:.0} + {:.0} * KB um^2",
        fa.intercept, fa.slope
    );
    let max_resid = pts_energy
        .iter()
        .map(|&(x, y)| (y - fe.eval(x)).abs())
        .fold(0.0f64, f64::max);
    println!("max energy residual: {max_resid:.2e} pJ/bit (exactly linear by construction)");
}
