//! Figure 12: normalized energy breakdown of the Simba baseline dataflow vs
//! the NN-Baton mapping on the five representative layers.
//!
//! Paper shape: significant NN-Baton advantages on the activation-intensive
//! and large-kernel layers (especially at 512x512), near-parity on the
//! weight-intensive and point-wise layers, and Simba's die-to-die share
//! always slightly higher from partial-sum transfers.

use baton_bench::{header, pct};
use nn_baton::prelude::*;

fn main() {
    header("Figure 12", "normalized energy: Simba baseline vs NN-Baton");
    let arch = presets::simba_4chiplet();
    let tech = Technology::paper_16nm();

    for res in [224u32, 512] {
        println!("\n--- input resolution {res}x{res}");
        println!(
            "{:<22} {:>12} {:>12} {:>9}   breakdown (normalized to Simba)",
            "layer", "NN-Baton", "Simba", "saving"
        );
        for (bucket, layer) in zoo::representative_layers(res) {
            let ours = search_layer(&layer, &arch, &tech, Objective::Energy)
                .expect("representative layers map");
            let simba = evaluate_simba(&layer, &arch, &tech);
            let norm = simba.energy.total_pj();
            let n = ours.energy.scaled(1.0 / norm);
            let s = simba.energy.scaled(1.0 / norm);
            println!(
                "{:<22} {:>10.1}uJ {:>10.1}uJ {:>9}",
                bucket,
                ours.energy.total_uj(),
                simba.energy.total_uj(),
                pct(1.0 - ours.energy.total_pj() / norm),
            );
            println!(
                "    ours : dram {:.2} d2d {:.2} l2 {:.2} l1 {:.2} rf {:.2} mac {:.2}",
                n.dram_pj, n.d2d_pj, n.l2_pj, n.l1_pj, n.rf_pj, n.mac_pj
            );
            println!(
                "    simba: dram {:.2} d2d {:.2} l2 {:.2} l1 {:.2} rf {:.2} mac {:.2}",
                s.dram_pj, s.d2d_pj, s.l2_pj, s.l1_pj, s.rf_pj, s.mac_pj
            );
        }
    }
}
