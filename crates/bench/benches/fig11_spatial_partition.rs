//! Figure 11: energy breakdown of the six spatial partition combinations on
//! the five representative layers, at 224x224 and 512x512 inputs, with the
//! best temporal strategy chosen per bar.
//!
//! Paper shape: hybrid chiplet partitions ((C,H)/(P,H)) are the overall
//! winners; P-type package partitions win the activation-intensive and
//! large-kernel layers, C-type wins the weight-intensive/point-wise/common
//! layers; (C,C) is removed for layers whose output channels are too few.

use baton_bench::header;
use nn_baton::c3p;
use nn_baton::mapping::enumerate::{candidates_with, EnumOptions};
use nn_baton::prelude::*;

/// Best evaluation among candidates with a given spatial tag, if any.
/// Candidates are restricted to the ring rotating transfer — the paper's
/// mechanism for this study (the DRAM-only fallback is our ablation).
fn best_for_tag(
    layer: &ConvSpec,
    arch: &PackageConfig,
    tech: &Technology,
    tag: &str,
) -> Option<Evaluation> {
    let opts = EnumOptions {
        rotations: &[RotationMode::Ring],
        ..EnumOptions::default()
    };
    let mut best: Option<Evaluation> = None;
    for m in candidates_with(layer, arch, opts) {
        if m.spatial_tag() != tag {
            continue;
        }
        let Ok(ev) = c3p::evaluate(layer, arch, tech, &m) else {
            continue;
        };
        if best
            .as_ref()
            .map(|b| ev.energy.total_pj() < b.energy.total_pj())
            .unwrap_or(true)
        {
            best = Some(ev);
        }
    }
    best
}

fn main() {
    header(
        "Figure 11",
        "energy breakdown per spatial partition combination (best temporal per bar)",
    );
    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    let tags = ["(C, C)", "(C, P)", "(C, H)", "(P, C)", "(P, P)", "(P, H)"];

    for res in [224u32, 512] {
        println!("\n--- input resolution {res}x{res}");
        for (bucket, layer) in zoo::representative_layers(res) {
            println!("{bucket} ({}):", layer.name());
            let mut winner: Option<(String, f64)> = None;
            for tag in tags {
                match best_for_tag(&layer, &arch, &tech, tag) {
                    Some(ev) => {
                        let e = ev.energy;
                        println!(
                            "  {tag:7} {:>9.1} uJ  [dram {:6.1} d2d {:6.1} l2 {:6.1} l1 {:6.1} rf {:6.1} mac {:5.1}]",
                            e.total_uj(),
                            e.dram_pj / 1e6,
                            e.d2d_pj / 1e6,
                            e.l2_pj / 1e6,
                            e.l1_pj / 1e6,
                            e.rf_pj / 1e6,
                            e.mac_pj / 1e6,
                        );
                        if winner
                            .as_ref()
                            .map(|(_, w)| e.total_pj() < *w)
                            .unwrap_or(true)
                        {
                            winner = Some((tag.to_string(), e.total_pj()));
                        }
                    }
                    None => println!("  {tag:7} removed (infeasible partition for this layer)"),
                }
            }
            if let Some((tag, _)) = winner {
                println!("  -> best spatial combination: {tag}");
            }
        }
    }
}
