//! Extension study: manufacturing cost vs chiplet granularity.
//!
//! The paper motivates chiplets economically ("employing the chiplet-based
//! solution sacrifices the performance and energy cost but obtains lower
//! cost and enables the die reuse", Section VI-B.1) but does not quantify
//! the cost side. This study joins the Figure 14 energy/EDP sweep with the
//! negative-binomial yield model so the trade-off the paper describes is
//! visible in one table.

use baton_bench::header;
use nn_baton::arch::presets::ProportionalBuffers;
use nn_baton::arch::CostModel;
use nn_baton::prelude::*;

fn main() {
    header(
        "Extension",
        "manufacturing cost vs energy across chiplet granularities (2048 MACs)",
    );
    let tech = Technology::paper_16nm();
    let cost = CostModel::n16_default();
    let model = zoo::resnet50(224);
    let results = granularity_sweep(
        &model,
        &tech,
        2048,
        &ProportionalBuffers::default(),
        Some(2.0),
    );

    println!(
        "{:>4} {:>16} {:>11} {:>11} {:>11} {:>12} {:>12}",
        "N_P", "best geometry", "die mm^2", "yield", "cost $", "energy uJ", "EDP J*s"
    );
    for np in [1u32, 2, 4, 8] {
        let Some(best) = results
            .iter()
            .filter(|r| r.geometry.0 == np)
            .min_by(|a, b| a.edp(&tech).total_cmp(&b.edp(&tech)))
        else {
            continue;
        };
        let die = best.chiplet_area_mm2;
        println!(
            "{np:>4} {:>16} {:>11.2} {:>10.1}% {:>11.2} {:>12.1} {:>12.3e}",
            format!("{:?}", best.geometry),
            die,
            100.0 * cost.die_yield(die),
            cost.system_cost_usd(die * f64::from(np), np),
            best.energy_pj / 1e6,
            best.edp(&tech)
        );
    }

    // The crossover curve on its own: cost of a fixed silicon budget split
    // 1..8 ways (die reuse and volume effects excluded).
    println!("\nfixed 24 mm^2 silicon budget, cost vs die count:");
    for n in 1u32..=8 {
        println!(
            "  {n} dies of {:>5.2} mm^2 -> ${:>6.2}",
            24.0 / f64::from(n),
            cost.system_cost_usd(24.0, n)
        );
    }
    println!(
        "\nexpected shape: at small chiplet areas fabrication yield is high \
         everywhere, so assembly overheads make FEWER dies cheaper at this \
         silicon budget; the chiplet advantage appears at reticle-scale \
         budgets (see the 400 mm^2 example in `baton_arch::cost`). Energy \
         still favours fewer chiplets -- the paper's trade-off."
    );
}
