//! Table II: the design space of computation resources and memory
//! footprints, plus the derived sweep sizes quoted in Section VI-B.

use baton_bench::header;
use nn_baton::dse::{ComputeSpace, DesignSpace};

fn main() {
    header("Table II", "design space of the experimental setup");
    let s = DesignSpace::default();
    println!("computation resources:");
    println!("  vector-MAC (P): {:?}", s.compute.vector);
    println!("  lanes      (L): {:?}", s.compute.lanes);
    println!("  cores    (N_C): {:?}", s.compute.cores);
    println!("  chiplets (N_P): {:?}", s.compute.chiplets);
    println!("memory footprint:");
    println!("  O-L1 (B):  {:?}", s.memory.o_l1);
    println!(
        "  A-L1 (KB): {:?}",
        s.memory.a_l1.iter().map(|b| b / 1024).collect::<Vec<_>>()
    );
    println!(
        "  W-L1 (KB): {:?}",
        s.memory.w_l1.iter().map(|b| b / 1024).collect::<Vec<_>>()
    );
    println!(
        "  A-L2 (KB): {:?}",
        s.memory.a_l2.iter().map(|b| b / 1024).collect::<Vec<_>>()
    );

    for macs in [2048u64, 4096] {
        let g = ComputeSpace::default().geometries_for(macs);
        println!(
            "\n{macs}-MAC budget: {} exact-product geometries, {} geometry x memory sweeps",
            g.len(),
            s.sweep_size(macs)
        );
    }
    println!(
        "\npaper: \"up to 63 possibilities\" for 2048 MACs and \"over 100,000 \
         sweeping\" for Figure 15; our exact-product enumeration of the printed \
         Table II yields 32 and 63 geometries respectively (see EXPERIMENTS.md)."
    );
}
