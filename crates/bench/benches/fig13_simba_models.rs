//! Figure 13: model-level comparison with Simba on VGG-16, ResNet-50 and
//! DarkNet-19 at 224x224 and 512x512 inputs (CONV + reorganized FC layers).
//!
//! Paper headline: 22.5 % - 44 % lower energy across the six benchmarks,
//! with the 512x512 results always saving at least as much as 224x224.

use baton_bench::{header, pct};
use nn_baton::prelude::*;

fn main() {
    header(
        "Figure 13",
        "NN-Baton vs Simba, model level (4-chiplet system)",
    );
    let arch = presets::simba_4chiplet();
    let tech = Technology::paper_16nm();
    println!(
        "{:>12} {:>6} {:>14} {:>14} {:>8}",
        "model", "input", "NN-Baton uJ", "Simba uJ", "saving"
    );
    let mut savings = Vec::new();
    for res in [224u32, 512] {
        for model in zoo::figure13_models(res) {
            let c = compare_model(&model, &arch, &tech);
            println!(
                "{:>12} {:>6} {:>14.1} {:>14.1} {:>8}",
                c.model,
                format!("{res}"),
                c.baton.total_uj(),
                c.simba.total_uj(),
                pct(c.saving())
            );
            savings.push(c.saving());
        }
    }
    let lo = savings.iter().copied().fold(f64::MAX, f64::min);
    let hi = savings.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "\nmeasured saving band: {} - {} (paper: 22.5% - 44%)",
        pct(lo),
        pct(hi)
    );
}
