//! Ablation: the temporal primitives (channel-priority vs plane-priority
//! unrolling) at both hierarchy levels.
//!
//! Section IV-A.2: channel-priority favours weight reuse, plane-priority
//! favours activation reuse; the optimum depends on the layer. This ablation
//! fixes both levels to one order and measures the regret against the free
//! search, demonstrating why the temporal choice must be layer-wise.

use baton_bench::{header, pct};
use nn_baton::c3p;
use nn_baton::prelude::*;

/// Energy of the winning mapping with both temporal orders overridden,
/// keeping every other mapping decision (tiles, partitions) fixed. This
/// isolates the temporal primitive; a free re-search could compensate with
/// different tile shapes.
fn flipped(
    layer: &ConvSpec,
    arch: &PackageConfig,
    tech: &Technology,
    best: &Mapping,
    order: TemporalOrder,
) -> f64 {
    let m = Mapping {
        package_order: order,
        chiplet_order: order,
        ..*best
    };
    c3p::evaluate(layer, arch, tech, &m)
        .map(|ev| ev.energy.total_pj())
        .unwrap_or(f64::NAN)
}

fn main() {
    header(
        "Ablation",
        "forced temporal orders vs free per-layer choice",
    );
    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    println!(
        "{:<22} {:>10} {:>13} {:>13} {:>10} {:>10}",
        "layer", "free uJ", "channel-only", "plane-only", "regret C", "regret P"
    );
    for (bucket, layer) in zoo::representative_layers(224) {
        let best = search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
        let free = best.energy.total_pj();
        let cp = flipped(
            &layer,
            &arch,
            &tech,
            &best.mapping,
            TemporalOrder::ChannelPriority,
        );
        let pp = flipped(
            &layer,
            &arch,
            &tech,
            &best.mapping,
            TemporalOrder::PlanePriority,
        );
        println!(
            "{:<22} {:>10.1} {:>13.1} {:>13.1} {:>10} {:>10}",
            bucket,
            free / 1e6,
            cp / 1e6,
            pp / 1e6,
            pct(cp / free - 1.0),
            pct(pp / free - 1.0)
        );
    }
    println!(
        "\nexpected shape: neither fixed order is free of regret across all \
         layer types -- the four per-level combinations must stay in the \
         search space."
    );
}
