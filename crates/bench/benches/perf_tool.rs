//! Criterion performance benches of the tool itself: decomposition, C3P
//! evaluation, per-layer search and the discrete-event simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use nn_baton::c3p;
use nn_baton::mapping::{decompose, enumerate};
use nn_baton::prelude::*;
use std::hint::black_box;

fn setup() -> (PackageConfig, Technology, ConvSpec, Mapping) {
    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    let layer = zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap();
    let mapping = search_layer(&layer, &arch, &tech, Objective::Energy)
        .unwrap()
        .mapping;
    (arch, tech, layer, mapping)
}

fn bench_decompose(c: &mut Criterion) {
    let (arch, _, layer, mapping) = setup();
    c.bench_function("decompose_common_layer", |b| {
        b.iter(|| decompose(black_box(&layer), black_box(&arch), black_box(&mapping)).unwrap())
    });
}

fn bench_evaluate(c: &mut Criterion) {
    let (arch, tech, layer, mapping) = setup();
    c.bench_function("c3p_evaluate_common_layer", |b| {
        b.iter(|| c3p::evaluate(&layer, &arch, &tech, black_box(&mapping)).unwrap())
    });
}

fn bench_profile_resolution(c: &mut Criterion) {
    let (arch, _, layer, mapping) = setup();
    let d = decompose(&layer, &arch, &mapping).unwrap();
    let p = c3p::LayerProfiles::build(&d);
    c.bench_function("profile_resolution_fast_path", |b| {
        b.iter(|| {
            c3p::resolve_at_capacities(
                black_box(&d),
                black_box(&p),
                800 * 8,
                64 * 1024 * 8,
                18 * 1024 * 8 * 8,
            )
        })
    });
}

fn bench_enumerate(c: &mut Criterion) {
    let (arch, _, layer, _) = setup();
    c.bench_function("enumerate_candidates", |b| {
        b.iter(|| enumerate::candidates(black_box(&layer), black_box(&arch)).len())
    });
}

fn bench_search(c: &mut Criterion) {
    let (arch, tech, layer, _) = setup();
    c.bench_function("search_layer_exhaustive", |b| {
        b.iter(|| search_layer(black_box(&layer), &arch, &tech, Objective::Energy).unwrap())
    });
}

fn bench_simulate(c: &mut Criterion) {
    let (arch, tech, layer, mapping) = setup();
    c.bench_function("des_simulate_layer", |b| {
        b.iter(|| simulate(&layer, &arch, &tech, black_box(&mapping)).unwrap())
    });
}

fn bench_simba(c: &mut Criterion) {
    let (arch, tech, layer, _) = setup();
    c.bench_function("simba_baseline_evaluate", |b| {
        b.iter(|| evaluate_simba(black_box(&layer), &arch, &tech))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_decompose, bench_evaluate, bench_profile_resolution,
              bench_enumerate, bench_search, bench_simulate, bench_simba
}
criterion_main!(benches);
