//! Extension study: sensitivity of the granularity decision to the
//! die-to-die link energy.
//!
//! The paper's Table I uses the 1.17 pJ/bit GRS link; newer interposer
//! links reach ~0.3 pJ/bit while organic-substrate SerDes can cost several
//! pJ/bit. This sweep shows how the multi-chiplet energy penalty — and
//! hence the optimal chiplet count — moves with that single technology
//! parameter.

use baton_bench::header;
use nn_baton::arch::presets::ProportionalBuffers;
use nn_baton::prelude::*;

fn main() {
    header(
        "Extension",
        "optimal chiplet count vs die-to-die energy (2048 MACs, no area limit)",
    );
    let model = zoo::darknet19(224);
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}   best N_P",
        "d2d pJ/bit", "1-chip uJ", "2-chip uJ", "4-chip uJ", "8-chip uJ"
    );
    for d2d in [0.3, 0.6, 1.17, 2.0, 3.34] {
        let mut tech = Technology::paper_16nm();
        tech.energy.d2d_pj_per_bit = d2d;
        let results = granularity_sweep(&model, &tech, 2048, &ProportionalBuffers::default(), None);
        let best = |np: u32| {
            results
                .iter()
                .filter(|r| r.geometry.0 == np)
                .map(|r| r.energy_pj)
                .fold(f64::MAX, f64::min)
        };
        let winner = [1u32, 2, 4, 8]
            .into_iter()
            .min_by(|&a, &b| best(a).total_cmp(&best(b)))
            .unwrap();
        println!(
            "{:>12.2} {:>14.1} {:>14.1} {:>14.1} {:>14.1}   {winner}",
            d2d,
            best(1) / 1e6,
            best(2) / 1e6,
            best(4) / 1e6,
            best(8) / 1e6,
        );
    }
    println!(
        "\nexpected shape: cheaper links narrow the multi-chiplet energy \
         penalty; the paper's Table I notes a 3.34 pJ/bit case where each \
         transfer crosses a pair of D2D PHYs, which widens it."
    );
}
