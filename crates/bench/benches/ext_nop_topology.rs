//! Extension study: the NoP topology choice.
//!
//! The paper adopts a directional ring "rather than an intricate network for
//! tens of chiplets". This study prices the rotating transfer's all-gather
//! pattern on the ring, Simba's 2-D mesh and an idealized crossbar, along
//! with the wiring budget each needs.

use baton_bench::header;
use nn_baton::arch::NopTopology;
use nn_baton::prelude::*;

fn main() {
    header(
        "Extension",
        "NoP topology: all-gather energy and wiring budget",
    );
    let tech = Technology::paper_16nm();
    let pj = tech.energy.d2d_pj_per_bit;
    // A representative rotation: a 64 KB activation slice per chiplet.
    let slice_bits: u64 = 64 * 1024 * 8;
    println!(
        "{:>6} {:>12} {:>16} {:>16} {:>16}",
        "chips", "topology", "links", "traversals", "all-gather uJ"
    );
    for n in [2u32, 4, 8] {
        let mesh = match n {
            2 => NopTopology::Mesh2D { rows: 1, cols: 2 },
            4 => NopTopology::Mesh2D { rows: 2, cols: 2 },
            _ => NopTopology::Mesh2D { rows: 2, cols: 4 },
        };
        for (name, t) in [
            ("ring", NopTopology::Ring),
            ("mesh", mesh),
            ("crossbar", NopTopology::Crossbar),
        ] {
            println!(
                "{n:>6} {:>12} {:>16} {:>16} {:>16.1}",
                name,
                t.link_count(n),
                t.all_gather_traversals(n),
                t.all_gather_pj(n, slice_bits, pj) / 1e6
            );
        }
    }
    println!(
        "\nexpected shape: the crossbar minimizes traversal energy but its \
         link count grows quadratically (each link is a 0.38 mm^2 GRS PHY \
         pair); at <= 8 chiplets the ring's N links with N(N-1) traversals \
         is the area-efficient compromise the paper selects."
    );
}
