//! A bounded MPMC work queue with close semantics and depth gauges.
//!
//! [`map_chunked`](crate::map_chunked) hands out *indices* through an atomic
//! cursor because its work set is known up front. A serving process has the
//! opposite shape: work arrives from outside at an unpredictable rate and
//! must be **refused** — not buffered without limit — once the system is
//! saturated. [`BoundedQueue`] is that admission point: `push` never blocks
//! (a full queue is the caller's signal to shed load), `pop` blocks until
//! work or close, and the current depth is exported as the
//! `baton_parallel_queue_depth{queue="<name>"}` gauge so saturation is
//! visible on `/metrics` before the first rejection.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use baton_telemetry::metrics;
use baton_telemetry::trace;

/// Gauge family shared with [`map_chunked`](crate::map_chunked)'s fan-out
/// depth series; each queue instance owns one `queue="<name>"` series.
pub const QUEUE_DEPTH_GAUGE: &str = "baton_parallel_queue_depth";
/// Help text for [`QUEUE_DEPTH_GAUGE`].
pub const QUEUE_DEPTH_HELP: &str =
    "Unclaimed items in a bounded parallel work queue, by queue name.";

/// A queue item bundled with its hand-off context: the producer's trace
/// propagation (so request-scoped spans recorded by the consumer attach to
/// the originating request — see `baton_telemetry::trace`) and the enqueue
/// instant (so the consumer can attribute queue wait).
///
/// Producers wrap work in [`Handoff::new`] before
/// [`BoundedQueue::push`]; consumers unwrap with [`Handoff::into_parts`]
/// and install the propagation for the item's lifetime. When tracing is
/// disabled the capture is one relaxed atomic load.
#[derive(Debug)]
pub struct Handoff<T> {
    item: T,
    trace: trace::Propagation,
    enqueued: Instant,
}

impl<T> Handoff<T> {
    /// Wraps `item`, capturing the calling thread's trace context and the
    /// current instant as the enqueue time.
    pub fn new(item: T) -> Self {
        Handoff {
            item,
            trace: trace::propagation(),
            enqueued: Instant::now(),
        }
    }

    /// When the item was wrapped for the queue.
    pub fn enqueued(&self) -> Instant {
        self.enqueued
    }

    /// Unwraps into `(item, producer trace context, enqueue instant)`.
    pub fn into_parts(self) -> (T, trace::Propagation, Instant) {
        (self.item, self.trace, self.enqueued)
    }
}

/// Why a [`BoundedQueue::push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item comes back to the caller, who
    /// should shed load (HTTP 429, drop, retry later).
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue (`Mutex` + `Condvar`, no
/// external dependencies) for handing work to a fixed pool of consumers.
///
/// * [`push`](Self::push) is non-blocking: it refuses instead of waiting,
///   so a producer (an HTTP acceptor, say) can answer back-pressure
///   immediately.
/// * [`pop`](Self::pop) blocks until an item arrives or the queue is
///   [`close`](Self::close)d *and* drained — consumers exit cleanly on
///   `None` without a sentinel item.
/// * Depth is mirrored into [`QUEUE_DEPTH_GAUGE`] under this queue's name
///   whenever the metrics layer is enabled.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
    name: &'static str,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (minimum 1), whose
    /// depth gauge renders as `queue="<name>"`.
    pub fn new(capacity: usize, name: &'static str) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            name,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn gauge(&self, depth: usize) {
        metrics::gauge_set(
            QUEUE_DEPTH_GAUGE,
            QUEUE_DEPTH_HELP,
            &[("queue", self.name)],
            depth as f64,
        );
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for observability only).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Offers an item without blocking. On refusal the item is handed back
    /// so the producer can answer the source (e.g. with an HTTP 429).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let depth = {
            let mut inner = self.lock();
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() >= self.capacity {
                return Err(PushError::Full(item));
            }
            inner.items.push_back(item);
            inner.items.len()
        };
        self.gauge(depth);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed **and** empty — the consumer's signal to
    /// exit. Items pushed before [`close`](Self::close) are always drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                let depth = inner.items.len();
                drop(inner);
                self.gauge(depth);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting new items and wakes every blocked consumer; already
    /// queued items still drain through [`pop`](Self::pop).
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BoundedQueue::new(8, "test");
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.depth(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_refuses_and_returns_the_item() {
        let q = BoundedQueue::new(2, "test");
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert_eq!(q.push("c"), Err(PushError::Full("c")));
        assert_eq!(q.pop(), Some("a"));
        q.push("c").unwrap();
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q = BoundedQueue::new(0, "test");
        assert_eq!(q.capacity(), 1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn close_drains_queued_items_then_yields_none() {
        let q = BoundedQueue::new(4, "test");
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = BoundedQueue::<u32>::new(4, "test");
        std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3).map(|_| s.spawn(|| q.pop())).collect();
            // Consumers are (eventually) parked in `pop`; close must free
            // them all without any item arriving.
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            for c in consumers {
                assert_eq!(c.join().unwrap(), None);
            }
        });
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = BoundedQueue::new(16, "test");
        let produced = 4 * 200;
        let consumed = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = &q;
                s.spawn(move || {
                    let mut sent = 0;
                    while sent < 200 {
                        match q.push(t * 1000 + sent) {
                            Ok(()) => sent += 1,
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                });
            }
            for _ in 0..2 {
                let (q, consumed) = (&q, &consumed);
                s.spawn(move || {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            // Producers finish first (scope join order is ours to manage):
            // wait for the full count, then close to release the consumers.
            while consumed.load(std::sync::atomic::Ordering::Relaxed) + q.depth() < produced {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            q.close();
        });
        assert_eq!(
            consumed.load(std::sync::atomic::Ordering::Relaxed),
            produced
        );
    }

    #[test]
    fn handoff_carries_the_producer_trace_across_the_queue() {
        trace::enable();
        let producer_trace = trace::TraceHandle::start();
        let q = BoundedQueue::new(4, "handoff_test");
        {
            // Producer side: trace installed while the work is wrapped.
            let _ctx = producer_trace.install();
            q.push(Handoff::new(41u32)).unwrap();
        }
        q.close();
        // Consumer side: another thread, no context of its own.
        std::thread::scope(|s| {
            s.spawn(|| {
                let handoff = q.pop().expect("one queued item");
                assert!(handoff.enqueued() <= Instant::now());
                let (item, prop, _enqueued) = handoff.into_parts();
                assert_eq!(item, 41);
                assert!(prop.is_active(), "producer context must ride along");
                let _ctx = prop.install();
                drop(baton_telemetry::span("consumer_side"));
            });
        });
        let done = producer_trace.finish("queue", 200);
        assert_eq!(done.spans.len(), 1);
        assert_eq!(done.spans[0].name, "consumer_side");
        assert_eq!(done.spans[0].parent, 0);
    }

    #[test]
    fn depth_gauge_tracks_push_and_pop() {
        use baton_telemetry::metrics::SeriesValue;
        // Serialized with the other metrics-touching test via the fan-out
        // lock in lib.rs? Queue tests use a distinct gauge label, so the
        // only cross-talk is enable/reset; hold the same lock to be safe.
        let _guard = crate::tests::fan_out_lock();
        metrics::enable();
        let q = BoundedQueue::new(4, "gauge_test");
        q.push(1).unwrap();
        q.push(2).unwrap();
        let depth = || {
            metrics::registry()
                .snapshot()
                .iter()
                .find(|f| f.name == QUEUE_DEPTH_GAUGE)
                .and_then(|f| {
                    f.series
                        .iter()
                        .find(|(k, _)| k.iter().any(|(_, v)| v == "gauge_test"))
                        .map(|(_, v)| v.clone())
                })
        };
        assert_eq!(depth(), Some(SeriesValue::Gauge(2.0)));
        q.pop();
        q.pop();
        assert_eq!(depth(), Some(SeriesValue::Gauge(0.0)));
        metrics::reset();
    }
}
