//! Dependency-free parallel executor for NN-Baton's exhaustive sweeps.
//!
//! The hermetic build has no rayon, so this crate provides the minimal
//! machinery the DSE hot loops need, on `std::thread::scope` alone:
//!
//! * [`map_chunked`] — a chunked work queue with an atomic cursor and an
//!   *ordered* reduce: results come back in input order, so a parallel sweep
//!   is bit-identical to the sequential one.
//! * [`AtomicBest`] — a shared "incumbent best score" encoded into one
//!   `AtomicU64`, the branch-and-bound state of the parallel mapping search.
//! * [`threads`] / [`configure_threads`] — worker-count resolution:
//!   explicit `--threads N` override, then the `BATON_THREADS` environment
//!   variable, then `std::thread::available_parallelism()`.
//! * [`queue::BoundedQueue`] — a bounded, closeable MPMC hand-off for work
//!   that arrives from *outside* (HTTP requests in `baton serve`), where a
//!   full queue must shed load instead of buffering unboundedly.
//!
//! Determinism is the design constraint throughout: worker *scheduling* is
//! free, but every reduction is ordered by input index, so the thread count
//! can never change a result — only how fast it arrives.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod queue;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use baton_telemetry::metrics;
use baton_telemetry::span_labeled;
use baton_telemetry::trace;

use queue::{QUEUE_DEPTH_GAUGE, QUEUE_DEPTH_HELP};

/// Gauge of workers currently inside a [`map_chunked`] scope, summed over
/// concurrent fan-outs.
const WORKERS_GAUGE: &str = "baton_parallel_workers";
const WORKERS_HELP: &str = "Worker threads currently executing a parallel fan-out.";

/// The fan-out's series in the shared [`QUEUE_DEPTH_GAUGE`] family: chunks
/// not yet claimed by any worker (of the most recently progressed fan-out;
/// gauges are last-write-wins by design).
const FAN_OUT_QUEUE: &[(&str, &str)] = &[("queue", "fanout")];

/// Explicit thread-count override (0 = unset). Set once by the CLI from
/// `--threads`; everything downstream reads [`threads`].
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or clears, with `None`) the explicit worker-count override.
///
/// Thread counts never change results — only wall time — so this global is
/// safe to flip at any point; in-flight scopes keep the count they started
/// with.
pub fn configure_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Parses a `BATON_THREADS`-style value: a positive integer, or `None` for
/// anything unusable (empty, zero, garbage).
pub fn parse_threads(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Resolves the worker count: the [`configure_threads`] override if set,
/// else `BATON_THREADS`, else the machine's available parallelism.
pub fn threads() -> usize {
    let explicit = OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("BATON_THREADS") {
        if let Some(n) = parse_threads(&v) {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Picks a work-queue chunk size for `items` units over `threads` workers:
/// small enough that the queue load-balances (several chunks per worker),
/// large enough that cursor traffic stays negligible.
pub fn chunk_size(items: usize, threads: usize) -> usize {
    if items == 0 {
        return 1;
    }
    (items / (threads.max(1) * 8)).clamp(1, 1024)
}

/// Applies `f` to every item, in parallel over `threads` workers, returning
/// the results **in input order**.
///
/// Work is handed out in `chunk`-sized runs of consecutive indices through a
/// shared atomic cursor; each worker writes a chunk's results into that
/// chunk's own slot, and the final splice walks the slots in order. The
/// output is therefore identical — bit for bit — to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`, for any
/// thread count and any scheduling.
///
/// `f` runs under a `parallel_worker` telemetry span labeled `w<id>` so
/// profiles attribute time per worker. If the calling thread has a request
/// trace installed (see `baton_telemetry::trace`), that context is captured
/// once and re-installed in every worker, so worker-side spans attach to
/// the originating request's span tree. With one worker (or one chunk) the
/// sequential fast path runs on the calling thread, span-free.
pub fn map_chunked<T, R, F>(items: &[T], threads: usize, chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let workers = threads.max(1).min(n_chunks.max(1));
    if workers <= 1 || n_chunks <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Serving-mode occupancy gauges. Chunk-grained (never per-item), and
    // behind the metrics enable flag, so one-shot CLI runs pay one relaxed
    // load per fan-out.
    let observe = metrics::enabled();
    if observe {
        metrics::gauge_add(WORKERS_GAUGE, WORKERS_HELP, &[], workers as f64);
        metrics::gauge_set(
            QUEUE_DEPTH_GAUGE,
            QUEUE_DEPTH_HELP,
            FAN_OUT_QUEUE,
            n_chunks as f64,
        );
    }

    // One slot per chunk. Each Mutex is written exactly once, by whichever
    // worker claimed that chunk; the lock is never contended.
    let slots: Vec<Mutex<Vec<R>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let cursor = AtomicUsize::new(0);
    // Captured once on the calling thread; each worker re-installs it so
    // its spans land in the originating request's trace. Inert (one atomic
    // load) when tracing is off or no trace is active here.
    let fan_trace = trace::propagation();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (slots, cursor, f, fan_trace) = (&slots, &cursor, &f, &fan_trace);
            s.spawn(move || {
                // Context first, span second: the guard must outlive (and
                // therefore drop after) the worker span it parents.
                let _trace_ctx = fan_trace.install();
                let _worker_span = span_labeled("parallel_worker", || format!("w{w}"));
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    if observe {
                        metrics::gauge_set(
                            QUEUE_DEPTH_GAUGE,
                            QUEUE_DEPTH_HELP,
                            FAN_OUT_QUEUE,
                            n_chunks.saturating_sub(c + 1) as f64,
                        );
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(n);
                    let out: Vec<R> = items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(start + j, t))
                        .collect();
                    *slots[c]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = out;
                }
            });
        }
    });
    if observe {
        metrics::gauge_add(WORKERS_GAUGE, WORKERS_HELP, &[], -(workers as f64));
        metrics::gauge_set(QUEUE_DEPTH_GAUGE, QUEUE_DEPTH_HELP, FAN_OUT_QUEUE, 0.0);
    }
    slots
        .into_iter()
        .flat_map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .collect()
}

/// Chunk-at-a-time variant of [`map_chunked`] with **per-worker scratch**:
/// `init()` runs once per worker (once total on the sequential fast path)
/// and the resulting state is threaded through every chunk that worker
/// claims. Returns one `R` per chunk, **in chunk order**.
///
/// This is the batched-evaluation primitive: a worker's scratch amortizes
/// arena buffers across all its chunks, while the ordered chunk results
/// keep reductions deterministic — for any thread count and scheduling, the
/// output equals the sequential
/// `chunks.map(|c| f(&mut scratch, c.start, c.items))` with a single
/// scratch. `f` receives the chunk's starting index into `items` so callers
/// can address parallel side tables.
///
/// With one worker (or one chunk) the sequential fast path runs on the
/// calling thread — scratch obtained from a thread-local pool in `init`
/// then persists across calls on that thread, which is what makes the
/// steady-state allocation budget hold at `--threads 1`. Gauges, worker
/// spans, and trace propagation behave exactly as in [`map_chunked`].
pub fn map_chunks<T, R, S, I, F>(items: &[T], threads: usize, chunk: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &[T]) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let workers = threads.max(1).min(n_chunks);
    if workers <= 1 || n_chunks <= 1 {
        let mut scratch = init();
        return (0..n_chunks)
            .map(|c| {
                let start = c * chunk;
                let end = (start + chunk).min(n);
                f(&mut scratch, start, &items[start..end])
            })
            .collect();
    }

    let observe = metrics::enabled();
    if observe {
        metrics::gauge_add(WORKERS_GAUGE, WORKERS_HELP, &[], workers as f64);
        metrics::gauge_set(
            QUEUE_DEPTH_GAUGE,
            QUEUE_DEPTH_HELP,
            FAN_OUT_QUEUE,
            n_chunks as f64,
        );
    }

    // One slot per chunk, written exactly once by whichever worker claimed
    // it; the lock is never contended.
    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let fan_trace = trace::propagation();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (slots, cursor, init, f, fan_trace) = (&slots, &cursor, &init, &f, &fan_trace);
            s.spawn(move || {
                // Context first, span second: the guard must outlive (and
                // therefore drop after) the worker span it parents.
                let _trace_ctx = fan_trace.install();
                let _worker_span = span_labeled("parallel_worker", || format!("w{w}"));
                let mut scratch = init();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    if observe {
                        metrics::gauge_set(
                            QUEUE_DEPTH_GAUGE,
                            QUEUE_DEPTH_HELP,
                            FAN_OUT_QUEUE,
                            n_chunks.saturating_sub(c + 1) as f64,
                        );
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(n);
                    let out = f(&mut scratch, start, &items[start..end]);
                    *slots[c]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                }
            });
        }
    });
    if observe {
        metrics::gauge_add(WORKERS_GAUGE, WORKERS_HELP, &[], -(workers as f64));
        metrics::gauge_set(QUEUE_DEPTH_GAUGE, QUEUE_DEPTH_HELP, FAN_OUT_QUEUE, 0.0);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every chunk slot is written exactly once")
        })
        .collect()
}

/// A shared minimization incumbent: the lowest `f64` score observed so far,
/// encoded into one `AtomicU64` so branch-and-bound workers can read and
/// tighten it without a lock.
///
/// The encoding maps the float total order onto the unsigned integer order
/// (sign-magnitude flip), so `fetch_min` on the bits *is* `min` on the
/// scores — including infinities; NaN scores are ignored by [`observe`].
///
/// The incumbent is monotonically non-increasing, which is what makes racy
/// reads safe for pruning: a stale (higher) value only prunes *less*.
///
/// [`observe`]: AtomicBest::observe
#[derive(Debug)]
pub struct AtomicBest(AtomicU64);

/// Monotone `f64 -> u64` key: preserves the IEEE-754 total order.
fn f64_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

/// Inverse of [`f64_key`].
fn f64_unkey(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

impl AtomicBest {
    /// Starts with no incumbent (`+inf`): everything beats it.
    pub fn new() -> Self {
        Self(AtomicU64::new(f64_key(f64::INFINITY)))
    }

    /// The current incumbent score (`+inf` until the first observation).
    pub fn get(&self) -> f64 {
        f64_unkey(self.0.load(Ordering::Relaxed))
    }

    /// Offers a score; returns `true` if it strictly improved the
    /// incumbent. NaN never improves.
    pub fn observe(&self, score: f64) -> bool {
        if score.is_nan() {
            return false;
        }
        let key = f64_key(score);
        self.0.fetch_min(key, Ordering::Relaxed) > key
    }

    /// Offers a score and returns the incumbent *as it was before this
    /// offer* — one atomic `fetch_min`, so a caller can distinguish
    /// "strictly improved" (`score < prev`) from "tied the best so far"
    /// (`score == prev`) without a race window. NaN is recorded as nothing
    /// and returns the current incumbent.
    pub fn offer(&self, score: f64) -> f64 {
        if score.is_nan() {
            return self.get();
        }
        let key = f64_key(score);
        f64_unkey(self.0.fetch_min(key, Ordering::Relaxed))
    }
}

impl Default for AtomicBest {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Serializes the tests that run [`map_chunked`] (and the queue gauge
    /// test in `queue.rs`): the occupancy test enables the process-global
    /// metrics registry, so a sibling fan-out running concurrently would
    /// mutate the same gauges and flake its exact-zero assertions (and see
    /// metrics flip off mid-run at reset).
    pub(crate) fn fan_out_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("lots"), None);
        assert_eq!(parse_threads("-2"), None);
    }

    #[test]
    fn override_wins_and_clears() {
        configure_threads(Some(3));
        assert_eq!(threads(), 3);
        configure_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn chunk_size_is_bounded_and_positive() {
        assert_eq!(chunk_size(0, 8), 1);
        assert_eq!(chunk_size(7, 8), 1);
        assert_eq!(chunk_size(64_000, 4), 1024); // capped
        let c = chunk_size(1000, 4);
        assert!((1..=1024).contains(&c));
    }

    #[test]
    fn map_chunked_preserves_input_order() {
        let _guard = fan_out_lock();
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1, 2, 4, 7] {
            for chunk in [1, 3, 64, 2000] {
                let got = map_chunked(&items, threads, chunk, |i, v| v * 3 + i as u64);
                assert_eq!(got, expect, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn map_chunked_handles_empty_and_singleton() {
        let _guard = fan_out_lock();
        let empty: Vec<u32> = vec![];
        assert!(map_chunked(&empty, 4, 8, |_, v| *v).is_empty());
        assert_eq!(map_chunked(&[42u32], 4, 8, |i, v| *v + i as u32), vec![42]);
    }

    #[test]
    fn map_chunked_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        let _guard = fan_out_lock();
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..256).collect();
        map_chunked(&items, 4, 1, |_, v| {
            seen.lock().unwrap().insert(std::thread::current().id());
            *v
        });
        // On a single-core machine the scheduler may still serialize onto
        // one worker, but the scope must at least not run on the caller.
        assert!(!seen.lock().unwrap().contains(&std::thread::current().id()));
    }

    #[test]
    fn occupancy_gauges_settle_after_the_scope() {
        use baton_telemetry::metrics::SeriesValue;
        let _guard = fan_out_lock();
        metrics::enable();
        let items: Vec<u32> = (0..512).collect();
        map_chunked(&items, 4, 8, |_, v| *v);
        let snap = baton_telemetry::metrics::registry().snapshot();
        let value = |name: &str| {
            snap.iter()
                .find(|f| f.name == name)
                .and_then(|f| f.series.first())
                .map(|(_, v)| v.clone())
        };
        let fanout_depth = snap
            .iter()
            .find(|f| f.name == QUEUE_DEPTH_GAUGE)
            .and_then(|f| {
                f.series
                    .iter()
                    .find(|(k, _)| k.iter().any(|(_, v)| v == "fanout"))
                    .map(|(_, v)| v.clone())
            });
        // Workers went up and came back down; the queue drained.
        assert_eq!(value(WORKERS_GAUGE), Some(SeriesValue::Gauge(0.0)));
        assert_eq!(fanout_depth, Some(SeriesValue::Gauge(0.0)));
        baton_telemetry::metrics::reset();
    }

    #[test]
    fn map_chunked_workers_record_into_the_callers_trace() {
        let _guard = fan_out_lock();
        trace::enable();
        let request = trace::TraceHandle::start();
        let items: Vec<u32> = (0..64).collect();
        {
            let _ctx = request.install();
            let _fan = baton_telemetry::span("fan_out");
            map_chunked(&items, 4, 4, |_, v| *v * 2);
        }
        let done = request.finish("POST /map", 200);
        let fan = done.spans.iter().find(|s| s.name == "fan_out").unwrap();
        let workers: Vec<_> = done
            .spans
            .iter()
            .filter(|s| s.name == "parallel_worker")
            .collect();
        assert!(
            !workers.is_empty(),
            "worker spans must land in the request trace: {:?}",
            done.spans
        );
        for w in workers {
            assert_eq!(w.parent, fan.id, "worker spans nest under the fan-out");
            assert!(w.label.as_deref().unwrap_or("").starts_with('w'));
            // Worker spans carry allocation attribution captured on the
            // worker thread itself. This test binary does not install the
            // counting allocator, so the deltas must be exactly zero — the
            // inert ledger never invents churn. (The `baton` binary does
            // install it; tests/serve.rs asserts the live nonzero case.)
            assert_eq!((w.net_allocs, w.net_bytes), (0, 0));
        }
    }

    #[test]
    fn map_chunks_matches_the_sequential_reference() {
        let _guard = fan_out_lock();
        let items: Vec<u64> = (0..997).map(|i| i * 7 % 113).collect();
        // Reference: one scratch, chunks in order. The scratch accumulates
        // across chunks *on one worker*, so only scratch-independent outputs
        // are deterministic across thread counts — model that: the result
        // depends on (start, slice) alone, the scratch only proves reuse.
        let reference = |chunk: usize| -> Vec<u64> {
            items
                .chunks(chunk)
                .enumerate()
                .map(|(c, s)| s.iter().sum::<u64>() + (c * chunk) as u64)
                .collect()
        };
        for threads in [1, 2, 4, 7] {
            for chunk in [1, 3, 64, 2000] {
                let got = map_chunks(
                    &items,
                    threads,
                    chunk,
                    Vec::<u64>::new,
                    |scratch, start, slice| {
                        scratch.clear();
                        scratch.extend_from_slice(slice);
                        scratch.iter().sum::<u64>() + start as u64
                    },
                );
                assert_eq!(got, reference(chunk.max(1)), "t={threads} c={chunk}");
            }
        }
    }

    #[test]
    fn map_chunks_inits_scratch_once_per_worker() {
        let _guard = fan_out_lock();
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..256).collect();
        // Sequential fast path: exactly one scratch.
        inits.store(0, Ordering::Relaxed);
        map_chunks(
            &items,
            1,
            8,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _, s| s.len(),
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        // Parallel: at most one scratch per worker, far fewer than chunks.
        inits.store(0, Ordering::Relaxed);
        let n_results = map_chunks(
            &items,
            4,
            8,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _, s| s.len(),
        )
        .len();
        assert_eq!(n_results, 32);
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn map_chunks_handles_empty_input_without_init() {
        let _guard = fan_out_lock();
        let inits = AtomicUsize::new(0);
        let empty: Vec<u32> = vec![];
        let out = map_chunks(
            &empty,
            4,
            8,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _, s| s.len(),
        );
        assert!(out.is_empty());
        assert_eq!(inits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn atomic_best_tightens_monotonically() {
        let best = AtomicBest::new();
        assert_eq!(best.get(), f64::INFINITY);
        assert!(best.observe(10.0));
        assert!(!best.observe(11.0), "worse score must not improve");
        assert!(best.observe(2.5));
        assert_eq!(best.get(), 2.5);
        assert!(!best.observe(2.5), "equal score is not an improvement");
        assert!(!best.observe(f64::NAN));
        assert_eq!(best.get(), 2.5);
    }

    #[test]
    fn offer_returns_the_previous_incumbent() {
        let best = AtomicBest::new();
        assert_eq!(best.offer(5.0), f64::INFINITY);
        assert_eq!(best.offer(5.0), 5.0, "tie sees itself as incumbent");
        assert_eq!(best.offer(9.0), 5.0, "worse offer leaves incumbent");
        assert_eq!(best.offer(1.0), 5.0);
        assert_eq!(best.offer(f64::NAN), 1.0);
        assert_eq!(best.get(), 1.0);
    }

    #[test]
    fn f64_key_is_order_preserving() {
        let vals = [
            f64::NEG_INFINITY,
            -1.0e300,
            -1.0,
            -0.0,
            0.0,
            1e-300,
            1.0,
            1.0e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(f64_key(w[0]) <= f64_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(f64_unkey(f64_key(v)), v);
        }
    }

    #[test]
    fn concurrent_observers_agree_on_the_minimum() {
        let _guard = fan_out_lock();
        let best = AtomicBest::new();
        let scores: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let items: Vec<usize> = (0..scores.len()).collect();
        map_chunked(&items, 4, 16, |_, &i| {
            best.observe(scores[i]);
        });
        assert_eq!(best.get(), 0.0);
    }
}
