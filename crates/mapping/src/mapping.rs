//! The complete mapping description for one layer.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::primitives::{ChipletPartition, PackagePartition, RotationMode, TemporalOrder};
use crate::tile::Tile;

/// A full workload-orchestration decision for one layer on one machine: the
/// output of the post-design flow (Section IV-D).
///
/// The pair of spatial primitives picks one of the paper's six loop-tiling
/// combinations, the pair of temporal orders one of four unrolling choices
/// (together the 24 loop-transformation families of Section IV-A), and the
/// tile fields fix the concrete loop counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Spatial partition across chiplets.
    pub package: PackagePartition,
    /// Spatial partition across the cores of a chiplet.
    pub chiplet: ChipletPartition,
    /// Temporal order of the chiplet-tile loops (package-level temporal
    /// primitive).
    pub package_order: TemporalOrder,
    /// Temporal order of the core-tile loops (chiplet-level temporal
    /// primitive).
    pub chiplet_order: TemporalOrder,
    /// Single chiplet workload per assignment: `HO_t x WO_t x CO_t`.
    pub chiplet_tile: Tile,
    /// Planar core tile `HO_c x WO_c`; the channel depth per core assignment
    /// is the lane count `L`.
    pub core_plane: (u32, u32),
    /// Inter-chiplet sharing mechanism.
    pub rotation: RotationMode,
}

impl Mapping {
    /// The spatial combination tag used on the paper's figure axes, e.g.
    /// `"(C, H)"`.
    pub fn spatial_tag(&self) -> String {
        format!("({}, {})", self.package.tag(), self.chiplet.tag())
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pkg[{} {}] chip[{} {}] tile {} core {}x{} ({})",
            self.spatial_tag(),
            self.package,
            self.package_order,
            self.chiplet,
            self.chiplet_order,
            self.chiplet_tile,
            self.core_plane.0,
            self.core_plane.1,
            self.rotation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_model::PlanarGrid;

    #[test]
    fn spatial_tag_matches_figure_axis_labels() {
        let m = Mapping {
            package: PackagePartition::Channel,
            chiplet: ChipletPartition::Hybrid {
                channel_ways: 2,
                grid: PlanarGrid::new(2, 2),
            },
            package_order: TemporalOrder::ChannelPriority,
            chiplet_order: TemporalOrder::PlanePriority,
            chiplet_tile: Tile::new(16, 16, 64),
            core_plane: (8, 8),
            rotation: RotationMode::Ring,
        };
        assert_eq!(m.spatial_tag(), "(C, H)");
        let s = m.to_string();
        assert!(s.contains("16x16x64"));
        assert!(s.contains("ring"));
    }
}
