//! Functional verification of a mapping: does the induced tiling compute
//! every output element exactly once?
//!
//! The analytical engine works with counts and footprints; this module is
//! the ground-truth checker behind it. It *executes* the spatial partition
//! and tiling of a mapping over a concrete output cube, marking every
//! assignment, and reports holes (elements never computed) or overlaps
//! (elements computed by more than one unit). The property tests use it to
//! pin the tiling arithmetic of [`crate::decompose()`](crate::decompose::decompose) to reality.

use baton_arch::PackageConfig;
use baton_model::ConvSpec;

use crate::mapping::Mapping;
use crate::primitives::{ChipletPartition, PackagePartition};
use crate::tile::ceil_div;

/// Outcome of replaying a mapping's spatial partition over the output cube.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Output elements in the cube.
    pub total: u64,
    /// Elements assigned to no unit.
    pub holes: u64,
    /// Elements assigned to more than one unit.
    pub overlaps: u64,
    /// Work assigned to the busiest core (elements).
    pub max_core_load: u64,
    /// Work assigned to the least busy core (elements; 0 if a core idles).
    pub min_core_load: u64,
    /// Mean elements per core across the whole machine.
    pub mean_core_load: f64,
}

impl Coverage {
    /// Whether the partition is a true partition: no holes, no overlaps.
    pub fn is_exact(&self) -> bool {
        self.holes == 0 && self.overlaps == 0
    }

    /// Load imbalance: `max / mean` core load (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        if self.max_core_load == 0 {
            return 1.0;
        }
        self.max_core_load as f64 / self.mean_core_load.max(f64::MIN_POSITIVE)
    }
}

/// Replays the spatial partition of `mapping` over the whole output cube of
/// `layer` and checks it is exact.
///
/// Every output element `(h, w, c)` is attributed to the chiplet owning it
/// under the package partition and then to the core owning it under the
/// chiplet partition (within its chiplet tile). The check is exhaustive, so
/// keep layers small in tests (cost is `O(HO * WO * CO)`).
pub fn verify_coverage(layer: &ConvSpec, arch: &PackageConfig, mapping: &Mapping) -> Coverage {
    let (ho, wo, co) = (layer.ho(), layer.wo(), layer.co());
    let n_p = arch.chiplets;
    let n_c = arch.chiplet.cores;
    let mut marks = vec![0u8; (ho as usize) * (wo as usize) * (co as usize)];
    let mut core_load = vec![0u64; (n_p as usize) * (n_c as usize)];

    // Enumerate chiplet parts.
    let parts = package_parts(layer, n_p, mapping);
    for (chiplet_idx, part) in parts.iter().enumerate() {
        // Tile the part.
        let t = mapping.chiplet_tile;
        for ty in steps(part.h0, part.h1, t.ho) {
            for tx in steps(part.w0, part.w1, t.wo) {
                for tc in steps(part.c0, part.c1, t.co) {
                    // Split the tile among cores.
                    assign_tile(
                        layer,
                        mapping,
                        n_c,
                        (ty, tx, tc),
                        chiplet_idx,
                        &mut marks,
                        &mut core_load,
                    );
                }
            }
        }
    }

    let mut holes = 0u64;
    let mut overlaps = 0u64;
    for &m in &marks {
        if m == 0 {
            holes += 1;
        } else if m > 1 {
            overlaps += 1;
        }
    }
    let max_core_load = core_load.iter().copied().max().unwrap_or(0);
    let min_core_load = core_load.iter().copied().min().unwrap_or(0);
    let total = marks.len() as u64;
    Coverage {
        total,
        holes,
        overlaps,
        max_core_load,
        min_core_load,
        mean_core_load: total as f64 / core_load.len().max(1) as f64,
    }
}

/// One chiplet's output sub-cube as half-open ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Part {
    h0: u32,
    h1: u32,
    w0: u32,
    w1: u32,
    c0: u32,
    c1: u32,
}

fn package_parts(layer: &ConvSpec, n_p: u32, mapping: &Mapping) -> Vec<Part> {
    let (ho, wo, co) = (layer.ho(), layer.wo(), layer.co());
    match &mapping.package {
        PackagePartition::Channel => balanced(co, n_p)
            .into_iter()
            .map(|(c0, len)| Part {
                h0: 0,
                h1: ho,
                w0: 0,
                w1: wo,
                c0,
                c1: c0 + len,
            })
            .collect(),
        PackagePartition::Planar(g) => {
            let rows = balanced(ho, g.rows());
            let cols = balanced(wo, g.cols());
            let mut out = Vec::new();
            for &(h0, hl) in &rows {
                for &(w0, wl) in &cols {
                    out.push(Part {
                        h0,
                        h1: h0 + hl,
                        w0,
                        w1: w0 + wl,
                        c0: 0,
                        c1: co,
                    });
                }
            }
            out
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn assign_tile(
    layer: &ConvSpec,
    mapping: &Mapping,
    n_c: u32,
    tile: ((u32, u32), (u32, u32), (u32, u32)),
    chiplet_idx: usize,
    marks: &mut [u8],
    core_load: &mut [u64],
) {
    let ((h0, h1), (w0, w1), (c0, c1)) = tile;
    let (grid_r, grid_c, ways) = match &mapping.chiplet {
        ChipletPartition::Channel => (1, 1, n_c),
        ChipletPartition::Planar(g) => (g.rows(), g.cols(), 1),
        ChipletPartition::Hybrid { channel_ways, grid } => {
            (grid.rows(), grid.cols(), *channel_ways)
        }
    };
    let rows = balanced_within(h0, h1, grid_r);
    let cols = balanced_within(w0, w1, grid_c);
    let chans = balanced_within(c0, c1, ways);
    let (wo, co) = (layer.wo(), layer.co());
    for (ri, &(rh0, rh1)) in rows.iter().enumerate() {
        for (ci_, &(cw0, cw1)) in cols.iter().enumerate() {
            for (ki, &(kc0, kc1)) in chans.iter().enumerate() {
                let core = ki * (grid_r as usize * grid_c as usize) + ri * grid_c as usize + ci_;
                let core = core % n_c as usize;
                let load_idx = chiplet_idx * n_c as usize + core;
                for h in rh0..rh1 {
                    for w in cw0..cw1 {
                        for c in kc0..kc1 {
                            let idx = ((h as usize) * wo as usize + w as usize) * co as usize
                                + c as usize;
                            marks[idx] = marks[idx].saturating_add(1);
                            core_load[load_idx] += 1;
                        }
                    }
                }
            }
        }
    }
}

/// `(start, len)` balanced split of `extent` into `parts`.
fn balanced(extent: u32, parts: u32) -> Vec<(u32, u32)> {
    let parts = parts.clamp(1, extent.max(1));
    let base = extent / parts;
    let rem = extent % parts;
    let mut out = Vec::new();
    let mut start = 0;
    for i in 0..parts {
        let len = base + u32::from(i < rem);
        if len == 0 {
            break;
        }
        out.push((start, len));
        start += len;
    }
    out
}

/// Balanced split of the half-open range `[a, b)`.
fn balanced_within(a: u32, b: u32, parts: u32) -> Vec<(u32, u32)> {
    balanced(b - a, parts)
        .into_iter()
        .map(|(s, l)| (a + s, a + s + l))
        .collect()
}

/// Iterator over `(start, end)` tile steps covering `[a, b)` with size `t`.
fn steps(a: u32, b: u32, t: u32) -> Vec<(u32, u32)> {
    let t = t.max(1);
    let mut out = Vec::with_capacity(ceil_div(b - a, t) as usize);
    let mut s = a;
    while s < b {
        out.push((s, (s + t).min(b)));
        s += t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use baton_arch::presets;
    use baton_model::zoo;

    #[test]
    fn every_candidate_is_an_exact_partition() {
        let arch = presets::case_study_accelerator();
        let layer = ConvSpec::new("t", 20, 20, 8, 3, 1, 1, 24).unwrap();
        let mut checked = 0;
        for m in enumerate::candidates(&layer, &arch) {
            if crate::decompose(&layer, &arch, &m).is_err() {
                continue;
            }
            let cov = verify_coverage(&layer, &arch, &m);
            assert!(
                cov.is_exact(),
                "{m}: {} holes, {} overlaps",
                cov.holes,
                cov.overlaps
            );
            checked += 1;
        }
        assert!(checked > 20, "only {checked} mappings checked");
    }

    #[test]
    fn real_layer_partitions_are_exact() {
        let arch = presets::case_study_accelerator();
        let layer = zoo::resnet50(224).layer("res2a_branch2a").cloned().unwrap();
        for m in enumerate::candidates(&layer, &arch).into_iter().take(40) {
            if crate::decompose(&layer, &arch, &m).is_err() {
                continue;
            }
            let cov = verify_coverage(&layer, &arch, &m);
            assert!(cov.is_exact(), "{m}");
            assert_eq!(cov.total, layer.output_elems());
        }
    }

    #[test]
    fn load_balance_within_one_tile_row() {
        // Balanced splits keep per-core loads within the tile-quantization
        // slack of each other for divisible shapes.
        let arch = presets::case_study_accelerator();
        let layer = ConvSpec::new("t", 32, 32, 8, 3, 1, 1, 64).unwrap();
        let m = enumerate::candidates(&layer, &arch)
            .into_iter()
            .find(|m| crate::decompose(&layer, &arch, m).is_ok())
            .expect("a feasible mapping");
        let cov = verify_coverage(&layer, &arch, &m);
        assert!(cov.is_exact());
        assert!(cov.max_core_load > 0);
    }
}
