//! The hierarchical output-centric dataflow description of NN-Baton
//! (Section IV of the paper).
//!
//! A [`Mapping`] describes how one layer workload is orchestrated across the
//! three hardware levels:
//!
//! * **spatial** primitives partition the output cube across parallel units:
//!   [`PackagePartition`] (C-type or P-type across chiplets) and
//!   [`ChipletPartition`] (C-type, P-type or hybrid H-type across cores);
//! * **temporal** primitives ([`TemporalOrder`]) pick channel-priority or
//!   plane-priority unrolling at the package and chiplet levels;
//! * the **rotating** primitive ([`RotationMode`]) shares activations or
//!   weights among chiplets over the directional ring.
//!
//! [`decompose()`](decompose::decompose) turns a `(layer, arch, mapping)` triple into exact loop
//! counts, tile windows and data volumes — the geometry consumed by the C3P
//! analytical engine — and [`enumerate`] generates the candidate mapping set
//! the post-design flow searches exhaustively.
//!
//! ```
//! use baton_arch::presets;
//! use baton_model::zoo;
//! use baton_mapping::enumerate::candidates;
//!
//! let arch = presets::case_study_accelerator();
//! let layer = zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap();
//! let maps = candidates(&layer, &arch);
//! assert!(maps.len() > 10, "exhaustive search evaluates many cases");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coverage;
pub mod decompose;
pub mod enumerate;
pub mod mapping;
pub mod nest;
pub mod pattern;
pub mod primitives;
pub mod tile;

pub use coverage::{verify_coverage, Coverage};
pub use decompose::{
    decompose, mapping_geometry, Decomposition, MappingError, MappingGeometry, NestScratch, Volumes,
};
pub use mapping::Mapping;
pub use nest::{Loop, LoopLevel, LoopNest};
pub use pattern::{preferred_grid, PatternContext};
pub use primitives::{ChipletPartition, Dim, PackagePartition, RotationMode, TemporalOrder};
pub use tile::Tile;
