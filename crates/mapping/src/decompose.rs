//! Workload decomposition: turning `(layer, machine, mapping)` into exact
//! loop counts, data volumes and working-set footprints.
//!
//! This is the geometry half of the analytical framework; the C3P engine
//! (crate `baton-c3p`) combines the [`Decomposition`] with buffer capacities
//! to produce access counts and energy. All volumes are *base* quantities:
//! they count one pass over each unique working set, and the C3P penalty
//! multipliers account for capacity-induced reloads.
//!
//! Window extents use the un-clipped sliding-window formula
//! `(t-1)*stride + k`; border clipping would reduce volumes by at most one
//! halo strip per feature-map edge, which is negligible at the tile counts
//! the mapping engine selects (the exact clipped geometry is available in
//! `baton_model::halo` and is used for the Figure 7 study).

use std::fmt;

use baton_arch::PackageConfig;
use baton_model::{ConvSpec, ACT_BITS, PSUM_BITS, WGT_BITS};
use serde::{Deserialize, Serialize};

use crate::mapping::Mapping;
use crate::nest::{Loop, LoopLevel, LoopNest};
use crate::primitives::TemporalOrder;
use crate::primitives::{ChipletPartition, Dim, PackagePartition, RotationMode};
use crate::tile::ceil_div;

/// Reasons a mapping is illegal for a given layer/machine pair.
///
/// `Copy` on purpose: the batched evaluator memoizes
/// `Result<MappingGeometry, MappingError>` per geometry, and every field is
/// plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingError {
    /// A planar partition grid does not match the unit count of its level.
    GridMismatch {
        /// `"package"` or `"chiplet"`.
        level: &'static str,
        /// Tiles in the grid.
        grid_tiles: u32,
        /// Parallel units at that level.
        units: u32,
    },
    /// A channel partition has more ways than output channels (idle units).
    ChannelsTooFew {
        /// `"package"` or `"chiplet"`.
        level: &'static str,
        /// Output channels available at that level.
        co: u32,
        /// Partition ways requested.
        ways: u32,
    },
    /// A planar grid has more rows/columns than output rows/columns.
    PlaneTooFine {
        /// `"package"` or `"chiplet"`.
        level: &'static str,
    },
    /// The O-L1 register file cannot hold the `HO_c x WO_c x L` psum tile.
    OL1Overflow {
        /// Required 24-bit slots.
        required: u64,
        /// Available slots.
        available: u64,
    },
    /// The O-L2 cannot hold the single-chiplet output tile.
    OL2Overflow {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
    /// The A-L1 cannot hold one `P`-channel chunk of the core-tile window.
    AL1Overflow {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
    /// The effective W-L1 (pool share) cannot hold one `L x P` weight block.
    WL1Overflow {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::GridMismatch {
                level,
                grid_tiles,
                units,
            } => write!(
                f,
                "{level} grid has {grid_tiles} tiles but the level has {units} units"
            ),
            MappingError::ChannelsTooFew { level, co, ways } => {
                write!(f, "{level} splits {co} output channels {ways} ways")
            }
            MappingError::PlaneTooFine { level } => {
                write!(f, "{level} planar grid finer than the output plane")
            }
            MappingError::OL1Overflow {
                required,
                available,
            } => write!(f, "O-L1 needs {required} psum slots, has {available}"),
            MappingError::OL2Overflow {
                required,
                available,
            } => write!(f, "O-L2 needs {required} B, has {available} B"),
            MappingError::AL1Overflow {
                required,
                available,
            } => write!(f, "A-L1 needs {required} B, has {available} B"),
            MappingError::WL1Overflow {
                required,
                available,
            } => write!(f, "W-L1 needs {required} B, has {available} B"),
        }
    }
}

impl std::error::Error for MappingError {}

impl MappingError {
    /// The telemetry rejection counter this error increments, so callers
    /// that memoize decomposition results can keep per-candidate reject
    /// accounting identical to calling [`decompose`] each time.
    pub fn counter(&self) -> baton_telemetry::Counter {
        use baton_telemetry::Counter;
        match self {
            MappingError::GridMismatch { .. } => Counter::RejectGridMismatch,
            MappingError::ChannelsTooFew { .. } => Counter::RejectChannelsTooFew,
            MappingError::PlaneTooFine { .. } => Counter::RejectPlaneTooFine,
            MappingError::OL1Overflow { .. } => Counter::RejectOL1Overflow,
            MappingError::OL2Overflow { .. } => Counter::RejectOL2Overflow,
            MappingError::AL1Overflow { .. } => Counter::RejectAL1Overflow,
            MappingError::WL1Overflow { .. } => Counter::RejectWL1Overflow,
        }
    }
}

/// Package-wide base data volumes in bits (one pass per unique working set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Volumes {
    /// DRAM input reads.
    pub dram_input_base: u64,
    /// Die-to-die bits moved by activation rotation.
    pub d2d_input_base: u64,
    /// A-L2 writes (DRAM-sourced plus ring-sourced input arrivals).
    pub a_l2_fill_base: u64,
    /// A-L2 reads toward the central bus (multicast counted once).
    pub a_l2_read_base: u64,
    /// A-L1 writes (each receiving core counts).
    pub a_l1_fill_base: u64,
    /// A-L1 reads by the PE arrays (capacity-independent).
    pub a_l1_read: u64,
    /// DRAM weight reads.
    pub dram_weight_base: u64,
    /// Die-to-die bits moved by weight rotation.
    pub d2d_weight_base: u64,
    /// W-L1 pool writes.
    pub w_l1_fill_base: u64,
    /// W-L1 reads by the PE arrays (broadcast counted once per stream).
    pub w_l1_read: u64,
    /// O-L1 register-file read-modify-write traffic (24-bit psums).
    pub o_l1_rmw: u64,
    /// O-L2 writes (re-quantized 8-bit outputs).
    pub o_l2_write: u64,
    /// O-L2 reads for the DRAM write-back.
    pub o_l2_read: u64,
    /// DRAM output writes.
    pub dram_output: u64,
    /// Total MAC operations.
    pub mac_ops: u64,
}

/// Working-set footprints in bits, indexed by nest position: entry `i` is the
/// footprint of everything strictly inside position `i` (0 = the core
/// compute block). Length is `nest.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Footprints {
    /// Input working set of one core (A-L1 granularity).
    pub core_input: Vec<u64>,
    /// Input working set of one chiplet (A-L2 granularity).
    pub chiplet_input: Vec<u64>,
    /// Weight working set of one weight stream (W-L1 pool-share granularity).
    pub stream_weight: Vec<u64>,
}

/// The full decomposition of one layer under one mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// The temporal loop nest, innermost first (unit loops dropped).
    pub nest: LoopNest,
    /// Base data volumes.
    pub volumes: Volumes,
    /// Working-set footprints aligned with `nest`.
    pub footprints: Footprints,
    /// Distinct weight streams per chiplet.
    pub weight_streams: u32,
    /// Cores sharing one weight stream (plane ways).
    pub plane_ways: u32,
    /// Whether activations rotate over the ring.
    pub rotate_inputs: bool,
    /// Whether weights rotate over the ring.
    pub rotate_weights: bool,
    /// Chiplet count.
    pub n_p: u32,
    /// Cores per chiplet.
    pub n_c: u32,
    /// Lanes per core.
    pub lanes: u32,
    /// Vector width per lane.
    pub vector: u32,
    /// Effective W-L1 capacity per stream in bits (pool share).
    pub effective_w_l1_bits: u64,
    /// Ideal compute cycles (no memory stalls), critical path over chiplets.
    pub compute_cycles: u64,
    /// MAC utilization = `mac_ops / (compute_cycles * total MACs)`.
    pub utilization: f64,
}

/// One axis of extents with multiplicities; all tiling arithmetic is
/// separable per axis, so sums over tile grids become products of per-axis
/// sums.
///
/// Backed by an inline array so axis arithmetic never allocates: the
/// batched evaluator runs `mapping_geometry` tens of thousands of times per
/// layer search. The bound is exact — the deepest refinement chain is
/// `part (<=2) x balanced (<=2) x tiled (<=2) + merging`, so 16 distinct
/// extents can never be exceeded (a violation panics rather than silently
/// truncating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Axis {
    /// `(extent, multiplicity)` pairs; extents are distinct and positive.
    pairs: [(u32, u64); Axis::CAP],
    len: usize,
}

impl Axis {
    const CAP: usize = 16;

    fn empty() -> Self {
        Self {
            pairs: [(0, 0); Axis::CAP],
            len: 0,
        }
    }

    fn push(&mut self, extent: u32, mult: u64) {
        assert!(
            self.len < Axis::CAP,
            "Axis overflow: more than {} distinct extents",
            Axis::CAP
        );
        self.pairs[self.len] = (extent, mult);
        self.len += 1;
    }

    fn pairs(&self) -> &[(u32, u64)] {
        &self.pairs[..self.len]
    }

    fn single(extent: u32) -> Self {
        let mut a = Self::empty();
        a.push(extent.max(1), 1);
        a
    }

    /// Balanced split into `parts` (sizes differ by at most one).
    fn balanced(extent: u32, parts: u32) -> Self {
        let parts = parts.clamp(1, extent.max(1));
        let base = extent / parts;
        let rem = extent % parts;
        let mut a = Self::empty();
        if rem > 0 {
            a.push(base + 1, u64::from(rem));
        }
        if base > 0 && parts > rem {
            a.push(base, u64::from(parts - rem));
        }
        a
    }

    /// Fixed-size tiling with a remainder tail.
    fn tiled(extent: u32, tile: u32) -> Self {
        let tile = tile.clamp(1, extent.max(1));
        let full = extent / tile;
        let rem = extent % tile;
        let mut a = Self::empty();
        if full > 0 {
            a.push(tile, u64::from(full));
        }
        if rem > 0 {
            a.push(rem, 1);
        }
        a
    }

    /// Applies `f` to each extent, weighted by multiplicity, and sums.
    fn sum_by(&self, mut f: impl FnMut(u32) -> u64) -> u64 {
        self.pairs().iter().map(|&(e, n)| n * f(e)).sum()
    }

    fn count(&self) -> u64 {
        self.pairs().iter().map(|&(_, n)| n).sum()
    }

    fn sum(&self) -> u64 {
        self.sum_by(u64::from)
    }

    fn max(&self) -> u32 {
        self.pairs().iter().map(|&(e, _)| e).max().unwrap_or(1)
    }

    /// Sliding-window extent sum: `sum count * ((e-1)*stride + k)`.
    fn window_sum(&self, stride: u32, k: u32) -> u64 {
        self.sum_by(|e| u64::from((e - 1) * stride + k))
    }

    /// Two-level refinement: split every extent with `split`, then merge
    /// equal refined extents (encounter order preserved).
    fn refine(&self, split: impl Fn(u32) -> Axis) -> Axis {
        let mut out = Axis::empty();
        for &(e, n) in self.pairs() {
            for &(se, sn) in split(e).pairs() {
                match out.pairs[..out.len].iter_mut().find(|(pe, _)| *pe == se) {
                    Some((_, pn)) => *pn += n * sn,
                    None => out.push(se, n * sn),
                }
            }
        }
        out
    }
}

fn window(extent: u32, stride: u32, k: u32) -> u64 {
    u64::from((extent.max(1) - 1) * stride + k)
}

/// Decomposes `layer` mapped on `arch` with `mapping`.
///
/// # Errors
///
/// Returns [`MappingError`] if the mapping is structurally illegal (grid/unit
/// mismatch, idle channel ways) or violates a buffer feasibility floor.
pub fn decompose(
    layer: &ConvSpec,
    arch: &PackageConfig,
    mapping: &Mapping,
) -> Result<Decomposition, MappingError> {
    use baton_telemetry::{count, Counter};
    count(Counter::DecomposeCalls);
    let result = decompose_impl(layer, arch, mapping);
    if baton_telemetry::enabled() {
        if let Err(e) = &result {
            count(e.counter());
        }
    }
    result
}

fn decompose_impl(
    layer: &ConvSpec,
    arch: &PackageConfig,
    mapping: &Mapping,
) -> Result<Decomposition, MappingError> {
    let geom = mapping_geometry(layer, arch, mapping)?;
    let (volumes, rotate_inputs, rotate_weights) = geom.volumes_for(mapping.rotation);
    let mut scratch = NestScratch::default();
    geom.build_nest_into(layer, mapping, rotate_inputs, rotate_weights, &mut scratch);
    Ok(Decomposition {
        nest: LoopNest::new(std::mem::take(&mut scratch.loops)),
        volumes,
        footprints: Footprints {
            core_input: scratch.core_input,
            chiplet_input: scratch.chiplet_input,
            stream_weight: scratch.stream_weight,
        },
        weight_streams: geom.streams,
        plane_ways: geom.plane_ways,
        rotate_inputs,
        rotate_weights,
        n_p: geom.n_p,
        n_c: geom.n_c,
        lanes: geom.lanes,
        vector: geom.vector,
        effective_w_l1_bits: geom.effective_w_l1_bits,
        compute_cycles: geom.compute_cycles,
        utilization: geom.utilization,
    })
}

/// The order- and rotation-independent core of a decomposition.
///
/// Every field is a function of `(layer, arch, package, chiplet, tile,
/// core_plane)` alone: the two temporal orders only permute the loop nest
/// ([`Self::build_nest_into`]) and the rotation mode only redistributes the
/// input/weight volumes between DRAM and the ring ([`Self::volumes_for`]) —
/// both O(1) transforms. The batched evaluator exploits this by memoizing
/// one `MappingGeometry` per distinct geometry and replaying it across the
/// up-to-8 order/rotation siblings the enumerator emits for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingGeometry {
    consumed_input: u64,
    a_l2_read_base: u64,
    a_l1_read: u64,
    wbits: u64,
    w_l1_read: u64,
    out_bits: u64,
    o_l1_rmw: u64,
    mac_ops: u64,
    streams: u32,
    plane_ways: u32,
    n_p: u32,
    n_c: u32,
    lanes: u32,
    vector: u32,
    effective_w_l1_bits: u64,
    compute_cycles: u64,
    utilization: f64,
    package_planar: bool,
    depthwise: bool,
    t_co: u64,
    t_h: u64,
    t_w: u64,
    c_co: u64,
    c_h: u64,
    c_w: u64,
    grid_rows: u32,
    grid_cols: u32,
    ci_needed: u64,
}

impl MappingGeometry {
    /// Ideal compute cycles (no memory stalls), critical path over chiplets.
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// MAC utilization = `mac_ops / (compute_cycles * total MACs)`.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Distinct weight streams per chiplet (clamped to the tile depth).
    pub fn weight_streams(&self) -> u32 {
        self.streams
    }

    /// Cores sharing one weight stream.
    pub fn plane_ways(&self) -> u32 {
        self.plane_ways
    }

    /// Effective W-L1 capacity per stream in bits (pool share).
    pub fn effective_w_l1_bits(&self) -> u64 {
        self.effective_w_l1_bits
    }

    /// Chiplet count.
    pub fn n_p(&self) -> u32 {
        self.n_p
    }

    /// Expands the geometry into package-wide base volumes under `rotation`.
    ///
    /// Returns `(volumes, rotate_inputs, rotate_weights)`; bit-identical to
    /// what [`decompose`] produces for the same mapping.
    pub fn volumes_for(&self, rotation: RotationMode) -> (Volumes, bool, bool) {
        let n_p = u64::from(self.n_p);
        let ring = rotation == RotationMode::Ring && self.n_p > 1;
        // Depthwise layers pair each output channel with exactly one input
        // channel, so a C-type package split also splits the inputs: nothing
        // is shared and rotation degenerates.
        let rotate_inputs = ring && !self.package_planar && !self.depthwise;
        let rotate_weights = ring && self.package_planar;

        // With rotation each element is DRAM-loaded once by its home chiplet
        // and then crosses `N_P - 1` ring links; without it every chiplet
        // loads its full consumption from DRAM directly.
        let (dram_input_base, d2d_input_base) = if rotate_inputs {
            (
                self.consumed_input / n_p,
                self.consumed_input / n_p * (n_p - 1),
            )
        } else {
            (self.consumed_input, 0)
        };
        let (dram_weight_base, d2d_weight_base, w_l1_fill_base) = if rotate_weights {
            (self.wbits, self.wbits * (n_p - 1), self.wbits * n_p)
        } else if self.package_planar && self.n_p > 1 {
            // Weights shared but fetched by every chiplet from DRAM.
            (self.wbits * n_p, 0, self.wbits * n_p)
        } else {
            (self.wbits, 0, self.wbits)
        };
        let volumes = Volumes {
            dram_input_base,
            d2d_input_base,
            a_l2_fill_base: self.consumed_input,
            a_l2_read_base: self.a_l2_read_base,
            a_l1_fill_base: self.a_l2_read_base * u64::from(self.streams),
            a_l1_read: self.a_l1_read,
            dram_weight_base,
            d2d_weight_base,
            w_l1_fill_base,
            w_l1_read: self.w_l1_read,
            o_l1_rmw: self.o_l1_rmw,
            o_l2_write: self.out_bits,
            o_l2_read: self.out_bits,
            dram_output: self.out_bits,
            mac_ops: self.mac_ops,
        };
        (volumes, rotate_inputs, rotate_weights)
    }
}

/// Computes the order/rotation-independent geometry of `mapping` for
/// `layer` on `arch`: structural validation, buffer-feasibility floors, and
/// all base quantities that do not depend on temporal order or rotation
/// mode. [`decompose`] composes this with [`MappingGeometry::volumes_for`]
/// and [`MappingGeometry::build_nest_into`]; the batched evaluator calls the
/// pieces directly so it can memoize this (dominant) part per geometry.
///
/// # Errors
///
/// Returns [`MappingError`] exactly when [`decompose`] would for any mapping
/// sharing this geometry (the error never depends on order or rotation).
/// Telemetry note: unlike [`decompose`], this does NOT bump
/// `DecomposeCalls`/reject counters — memoizing callers replay them via
/// [`MappingError::counter`].
pub fn mapping_geometry(
    layer: &ConvSpec,
    arch: &PackageConfig,
    mapping: &Mapping,
) -> Result<MappingGeometry, MappingError> {
    let n_p = arch.chiplets;
    let n_c = arch.chiplet.cores;
    let lanes = arch.chiplet.core.lanes;
    let vector = arch.chiplet.core.vector;
    let (ho, wo, co) = (layer.ho(), layer.wo(), layer.co());
    let ci_g = layer.ci_per_group();
    let (kh, kw) = (layer.kh(), layer.kw());
    let (sh, sw) = (layer.stride_h(), layer.stride_w());
    let depthwise = layer.groups() > 1;

    // --- Structural validation -------------------------------------------
    match &mapping.package {
        PackagePartition::Channel => {
            // `co < n_p` leaves chiplets idle; the balanced split handles it
            // (the enumerator prefers full-utilization partitions but falls
            // back to this for thin layers).
        }
        PackagePartition::Planar(g) => {
            if g.tiles() != n_p {
                return Err(MappingError::GridMismatch {
                    level: "package",
                    grid_tiles: g.tiles(),
                    units: n_p,
                });
            }
            if g.rows() > ho || g.cols() > wo {
                return Err(MappingError::PlaneTooFine { level: "package" });
            }
        }
    }
    let tile = mapping.chiplet_tile;
    // Channel splits wider than the tile depth leave cores idle: clamp the
    // stream count instead of rejecting, so thin layers always map.
    let streams = mapping.chiplet.weight_streams(n_c).min(tile.co.max(1));
    let plane_ways = mapping.chiplet.plane_ways(n_c);
    match &mapping.chiplet {
        ChipletPartition::Channel => {}
        ChipletPartition::Planar(g) => {
            if g.tiles() != n_c {
                return Err(MappingError::GridMismatch {
                    level: "chiplet",
                    grid_tiles: g.tiles(),
                    units: n_c,
                });
            }
            if g.rows() > tile.ho || g.cols() > tile.wo {
                return Err(MappingError::PlaneTooFine { level: "chiplet" });
            }
        }
        ChipletPartition::Hybrid { channel_ways, grid } => {
            if channel_ways * grid.tiles() != n_c {
                return Err(MappingError::GridMismatch {
                    level: "chiplet",
                    grid_tiles: channel_ways * grid.tiles(),
                    units: n_c,
                });
            }
            if tile.co < *channel_ways {
                return Err(MappingError::ChannelsTooFew {
                    level: "chiplet",
                    co: tile.co,
                    ways: *channel_ways,
                });
            }
            if grid.rows() > tile.ho || grid.cols() > tile.wo {
                return Err(MappingError::PlaneTooFine { level: "chiplet" });
            }
        }
    }

    // --- Buffer feasibility floors ----------------------------------------
    let (ho_c, wo_c) = mapping.core_plane;
    let core_psums = u64::from(ho_c) * u64::from(wo_c) * u64::from(lanes);
    let o_l1_slots = arch.chiplet.core.o_l1_bytes * 8 / PSUM_BITS;
    if core_psums > o_l1_slots {
        return Err(MappingError::OL1Overflow {
            required: core_psums,
            available: o_l1_slots,
        });
    }
    let tile_bytes = tile.elems() * ACT_BITS / 8;
    if tile_bytes > arch.chiplet.o_l2_bytes {
        return Err(MappingError::OL2Overflow {
            required: tile_bytes,
            available: arch.chiplet.o_l2_bytes,
        });
    }
    let chunk = u64::from(vector.min(ci_g.max(1)));
    let a_l1_need = window(ho_c, sh, kh) * window(wo_c, sw, kw) * chunk * ACT_BITS / 8;
    if a_l1_need > arch.chiplet.core.a_l1_bytes {
        return Err(MappingError::AL1Overflow {
            required: a_l1_need,
            available: arch.chiplet.core.a_l1_bytes,
        });
    }
    let effective_w_l1_bits = u64::from(plane_ways) * arch.chiplet.core.w_l1_bytes * 8;
    let w_min = u64::from(lanes) * u64::from(vector) * WGT_BITS;
    if w_min > effective_w_l1_bits {
        return Err(MappingError::WL1Overflow {
            required: w_min / 8,
            available: effective_w_l1_bits / 8,
        });
    }

    let package_planar = matches!(mapping.package, PackagePartition::Planar(_));

    // --- Package partition: per-chiplet part axes ---------------------------
    // Plane parts (rows/cols with multiplicity across chiplets) and channel
    // parts.
    let (part_h, part_w, part_co): (Axis, Axis, Axis) = match &mapping.package {
        // C-type: every chiplet tiles the same full plane; CO splits.
        PackagePartition::Channel => (Axis::single(ho), Axis::single(wo), Axis::balanced(co, n_p)),
        // P-type: the plane splits across chiplets; CO stays whole.
        PackagePartition::Planar(g) => (
            Axis::balanced(ho, g.rows()),
            Axis::balanced(wo, g.cols()),
            Axis::single(co),
        ),
    };

    // Chiplet-tile tilings per axis (two-level refinement keeps exact
    // multiplicities of every distinct tile extent).
    let tiles_h = part_h.refine(|e| Axis::tiled(e, tile.ho));
    let tiles_w = part_w.refine(|e| Axis::tiled(e, tile.wo));
    let tiles_co = part_co.refine(|e| Axis::tiled(e, tile.co));

    // Core sub-tiling inside a chiplet tile.
    let (grid_rows, grid_cols) = match &mapping.chiplet {
        ChipletPartition::Channel => (1, 1),
        ChipletPartition::Planar(g) => (g.rows(), g.cols()),
        ChipletPartition::Hybrid { grid, .. } => (grid.rows(), grid.cols()),
    };
    let core_tiles_h =
        tiles_h.refine(|e| Axis::balanced(e, grid_rows).refine(|s| Axis::tiled(s, ho_c)));
    let core_tiles_w =
        tiles_w.refine(|e| Axis::balanced(e, grid_cols).refine(|s| Axis::tiled(s, wo_c)));
    // Channel steps: each chiplet tile's CO extent splits into `streams`
    // groups, each group iterates lanes-sized steps.
    let group_co = tiles_co.refine(|e| Axis::balanced(e, streams));
    let co_steps_total: u64 = group_co.sum_by(|g| u64::from(ceil_div(g, lanes)));
    let ci_chunks = u64::from(ceil_div(ci_g, vector));

    // --- Input volumes ------------------------------------------------------
    let act = ACT_BITS;
    // Window sums over chiplet tiles, per plane pass (no CO revisits).
    let tile_winsum = tiles_h.window_sum(sh, kh) * tiles_w.window_sum(sw, kw);
    // Input channels consumed by one chiplet for one plane tile pass.
    let ci_consumed_per_chiplet: u64 = if depthwise {
        // Each chiplet touches only the input channels of its CO part.
        match &mapping.package {
            PackagePartition::Channel => u64::from(co) / u64::from(n_p).max(1),
            PackagePartition::Planar(_) => u64::from(layer.ci()),
        }
    } else {
        u64::from(layer.ci())
    };
    // Chiplet-count factor for C-type (all chiplets share one plane tiling).
    let chiplet_plane_factor: u64 = match &mapping.package {
        PackagePartition::Channel => u64::from(n_p),
        PackagePartition::Planar(_) => 1, // parts already enumerate chiplets
    };
    let consumed_input = tile_winsum * ci_consumed_per_chiplet * act * chiplet_plane_factor;

    // A-L2 -> bus reads: once per core-tile plane position per chiplet tile
    // pass, multicast across channel groups.
    let core_winsum = core_tiles_h.window_sum(sh, kh) * core_tiles_w.window_sum(sw, kw);
    let a_l2_read_base = core_winsum * ci_consumed_per_chiplet * act * chiplet_plane_factor;

    // PE-side A-L1 reads: one P-vector per (pixel, kh, kw, ci-chunk) per
    // channel step, broadcast to all lanes. `co_steps_total` already
    // aggregates over all chiplet CO parts, and the plane-axis sums
    // aggregate over all plane parts, so no chiplet factor appears here.
    let pixels: u64 = part_h.sum() * part_w.sum();
    let kernel_pts = u64::from(kh) * u64::from(kw);
    let a_l1_read = pixels * co_steps_total * kernel_pts * ci_chunks * u64::from(vector) * act;

    // --- Weight volumes -----------------------------------------------------
    // (The DRAM/D2D split is rotation-dependent and lives in
    // [`MappingGeometry::volumes_for`].)
    let wbits = layer.weight_elems() * WGT_BITS;

    // W-L1 -> PE reads: one L x P block per (core-tile plane position,
    // channel step, kh, kw, ci chunk), broadcast across a stream's cores.
    // As with `a_l1_read`, plane-axis counts and `co_steps_total` aggregate
    // over parts in complementary directions, so their product is the
    // package-wide total.
    let core_plane_positions = core_tiles_h.count() * core_tiles_w.count();
    let w_l1_read = core_plane_positions
        * co_steps_total
        * kernel_pts
        * ci_chunks
        * u64::from(vector)
        * u64::from(lanes)
        * WGT_BITS;

    // --- Output volumes -----------------------------------------------------
    let out_bits = layer.output_elems() * act;
    let o_l1_rmw = layer.output_elems() * kernel_pts * ci_chunks * PSUM_BITS;

    // --- Compute time -------------------------------------------------------
    // Critical path: the worst chiplet part, each tile paced by its slowest
    // core (largest balanced sub-extent, ceil-divided lane steps). All three
    // axes are separable.
    let mac_ops = layer.macs();
    let worst_h = Axis::tiled(part_h.max(), tile.ho);
    let worst_w = Axis::tiled(part_w.max(), tile.wo);
    let worst_co = Axis::tiled(part_co.max(), tile.co);
    let cyc_h = worst_h.sum_by(|e| u64::from(ceil_div(e, grid_rows)));
    let cyc_w = worst_w.sum_by(|e| u64::from(ceil_div(e, grid_cols)));
    let cyc_co = worst_co.sum_by(|e| u64::from(ceil_div(ceil_div(e, streams), lanes)));
    let compute_cycles = (cyc_h * cyc_w * cyc_co * kernel_pts * ci_chunks).max(1);
    let total_units = u64::from(n_p) * u64::from(n_c) * u64::from(lanes) * u64::from(vector);
    let utilization = mac_ops as f64 / (compute_cycles as f64 * total_units as f64);

    Ok(MappingGeometry {
        consumed_input,
        a_l2_read_base,
        a_l1_read,
        wbits,
        w_l1_read,
        out_bits,
        o_l1_rmw,
        mac_ops,
        streams,
        plane_ways,
        n_p,
        n_c,
        lanes,
        vector,
        effective_w_l1_bits,
        compute_cycles,
        utilization,
        package_planar,
        depthwise,
        t_co: tiles_co_steps(&part_co, tile.co),
        t_h: axis_tile_count(&part_h, tile.ho),
        t_w: axis_tile_count(&part_w, tile.wo),
        c_co: u64::from(ceil_div(
            ceil_div(tile.co.min(part_co.max()), streams),
            lanes,
        )),
        c_h: core_loop_count(part_h.max().min(tile.ho), grid_rows, ho_c),
        c_w: core_loop_count(part_w.max().min(tile.wo), grid_cols, wo_c),
        grid_rows,
        grid_cols,
        ci_needed: ci_consumed_per_chiplet,
    })
}

/// Number of chiplet-tile steps along the CO axis (max over parts).
fn tiles_co_steps(part_co: &Axis, tile_co: u32) -> u64 {
    part_co
        .pairs()
        .iter()
        .map(|&(e, _)| Axis::tiled(e, tile_co).count())
        .max()
        .unwrap_or(1)
}

/// Number of chiplet-tile steps along a plane axis (max over parts).
fn axis_tile_count(part: &Axis, tile: u32) -> u64 {
    part.pairs()
        .iter()
        .map(|&(e, _)| Axis::tiled(e, tile).count())
        .max()
        .unwrap_or(1)
}

/// Core-tile steps along one plane axis inside a chiplet tile.
fn core_loop_count(tile_extent: u32, grid: u32, core_tile: u32) -> u64 {
    let sub = Axis::balanced(tile_extent, grid).max();
    Axis::tiled(sub, core_tile).count()
}

/// Reusable output buffers for [`MappingGeometry::build_nest_into`].
///
/// Cleared (capacity kept) on every build, so a steady-state search reuses
/// one allocation per thread. `loops` holds the non-unit temporal loops
/// innermost-first — exactly what `LoopNest::new` would retain — and the
/// three footprint tables are aligned with it (`len() == loops.len() + 1`,
/// entry 0 = the core compute block).
#[derive(Debug, Default)]
pub struct NestScratch {
    /// Non-unit temporal loops, innermost first.
    pub loops: Vec<Loop>,
    /// Input working set of one core (A-L1 granularity), per nest position.
    pub core_input: Vec<u64>,
    /// Input working set of one chiplet (A-L2 granularity), per position.
    pub chiplet_input: Vec<u64>,
    /// Weight working set of one stream (W-L1 share), per position.
    pub stream_weight: Vec<u64>,
}

impl MappingGeometry {
    /// Builds the temporal nest (innermost first) and the aligned footprint
    /// tables into `out`. The rotate flags must come from
    /// [`Self::volumes_for`] on the same geometry; `mapping` contributes
    /// only its temporal orders, tile, and core plane (all part of the
    /// geometry key or order data).
    pub fn build_nest_into(
        &self,
        layer: &ConvSpec,
        mapping: &Mapping,
        rotate_inputs: bool,
        rotate_weights: bool,
        out: &mut NestScratch,
    ) {
        out.loops.clear();
        out.core_input.clear();
        out.chiplet_input.clear();
        out.stream_weight.clear();

        let (kh, kw) = (layer.kh(), layer.kw());
        let (sh, sw) = (layer.stride_h(), layer.stride_w());
        let ci_g = u64::from(layer.ci_per_group());
        let kernel_pts = u64::from(kh) * u64::from(kw);
        let (ho_c, wo_c) = mapping.core_plane;
        let tile = mapping.chiplet_tile;

        // Raw loop list, innermost first. The rotating primitive sits inside
        // the core-level block (Section III-B): activation rotation slices
        // the reduction (CI) dimension, weight rotation slices output
        // channels.
        let rot: Option<Loop> = if rotate_inputs {
            Some(Loop {
                dim: Dim::Ci,
                count: u64::from(self.n_p),
                level: LoopLevel::Rotation,
            })
        } else if rotate_weights {
            Some(Loop {
                dim: Dim::Co,
                count: u64::from(self.n_p),
                level: LoopLevel::Rotation,
            })
        } else {
            None
        };
        let core_loops: [Loop; 3] = {
            let co = Loop {
                dim: Dim::Co,
                count: self.c_co,
                level: LoopLevel::Core,
            };
            let h = Loop {
                dim: Dim::Ho,
                count: self.c_h,
                level: LoopLevel::Core,
            };
            let w = Loop {
                dim: Dim::Wo,
                count: self.c_w,
                level: LoopLevel::Core,
            };
            match mapping.chiplet_order {
                TemporalOrder::ChannelPriority => [co, h, w],
                TemporalOrder::PlanePriority => [h, w, co],
            }
        };
        let chip_loops: [Loop; 3] = {
            let co = Loop {
                dim: Dim::Co,
                count: self.t_co,
                level: LoopLevel::Chiplet,
            };
            let h = Loop {
                dim: Dim::Ho,
                count: self.t_h,
                level: LoopLevel::Chiplet,
            };
            let w = Loop {
                dim: Dim::Wo,
                count: self.t_w,
                level: LoopLevel::Chiplet,
            };
            match mapping.package_order {
                TemporalOrder::ChannelPriority => [co, h, w],
                TemporalOrder::PlanePriority => [h, w, co],
            }
        };

        // Coverage state (output extents).
        let mut core_h = u64::from(ho_c.min(tile.ho));
        let mut core_w = u64::from(wo_c.min(tile.wo));
        let mut chip_h = u64::from(tile.ho);
        let mut chip_w = u64::from(tile.wo);
        let mut stream_co = u64::from(tile.co)
            .div_ceil(u64::from(self.streams))
            .min(u64::from(layer.co()));
        // Input channels resident below the rotation loop.
        let mut ci_cov = if rotate_inputs {
            (self.ci_needed / u64::from(self.n_p)).max(1)
        } else {
            self.ci_needed
        };
        // At the core compute base, only the lane group's CO slice of
        // weights is live; it grows to the stream share across c_co.
        let mut weight_co = u64::from(self.lanes).min(stream_co);

        let win = |h: u64, w: u64| -> u64 {
            ((h.max(1) - 1) * u64::from(sh) + u64::from(kh))
                * ((w.max(1) - 1) * u64::from(sw) + u64::from(kw))
        };
        let fp_in = |h: u64, w: u64, ci: u64| win(h, w) * ci * ACT_BITS;
        let fp_weight = |co: u64, ci: u64| co * ci * kernel_pts * WGT_BITS;

        // Position 0: inside the innermost loop (core compute block).
        out.core_input.push(fp_in(core_h, core_w, ci_cov));
        out.chiplet_input.push(fp_in(chip_h, chip_w, ci_cov));
        out.stream_weight
            .push(fp_weight(weight_co, ci_cov.min(ci_g)));

        for l in rot.into_iter().chain(core_loops).chain(chip_loops) {
            // Update coverage as this loop completes.
            match (l.level, l.dim) {
                (LoopLevel::Rotation, Dim::Ci) => ci_cov = self.ci_needed,
                (LoopLevel::Rotation, Dim::Co) => {
                    weight_co = (weight_co * l.count).min(stream_co);
                }
                (LoopLevel::Rotation, _) => {}
                (LoopLevel::Core, Dim::Co) => {
                    weight_co = (weight_co * l.count).min(stream_co);
                }
                (LoopLevel::Core, Dim::Ho) => {
                    core_h = (core_h * l.count).min(chip_h.div_ceil(u64::from(self.grid_rows)));
                }
                (LoopLevel::Core, Dim::Wo) => {
                    core_w = (core_w * l.count).min(chip_w.div_ceil(u64::from(self.grid_cols)));
                }
                (LoopLevel::Chiplet, Dim::Co) => {
                    stream_co = (stream_co * l.count).min(u64::from(layer.co()));
                    weight_co = stream_co.min(weight_co * l.count);
                }
                (LoopLevel::Chiplet, Dim::Ho) => {
                    chip_h = (chip_h * l.count).min(u64::from(layer.ho()));
                    core_h = chip_h.div_ceil(u64::from(self.grid_rows));
                }
                (LoopLevel::Chiplet, Dim::Wo) => {
                    chip_w = (chip_w * l.count).min(u64::from(layer.wo()));
                    core_w = chip_w.div_ceil(u64::from(self.grid_cols));
                }
                _ => {}
            }
            if l.count > 1 {
                out.loops.push(l);
                out.core_input.push(fp_in(core_h, core_w, ci_cov));
                out.chiplet_input.push(fp_in(chip_h, chip_w, ci_cov));
                out.stream_weight
                    .push(fp_weight(weight_co, ci_cov.min(ci_g)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::Tile;
    use baton_arch::presets;
    use baton_model::zoo;
    use baton_model::PlanarGrid;

    fn arch() -> PackageConfig {
        presets::case_study_accelerator()
    }

    fn common_layer() -> ConvSpec {
        zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap()
    }

    fn simple_mapping() -> Mapping {
        Mapping {
            package: PackagePartition::Channel,
            chiplet: ChipletPartition::Channel,
            package_order: TemporalOrder::ChannelPriority,
            chiplet_order: TemporalOrder::ChannelPriority,
            chiplet_tile: Tile::new(28, 28, 16),
            core_plane: (8, 8),
            rotation: RotationMode::Ring,
        }
    }

    #[test]
    fn axis_balanced_and_tiled_cover_exactly() {
        for extent in [1u32, 7, 56, 57, 224] {
            for parts in [1u32, 2, 3, 4, 8] {
                let a = Axis::balanced(extent, parts);
                assert_eq!(a.sum(), u64::from(extent));
                assert!(a.count() <= u64::from(parts));
            }
            for t in [1u32, 3, 8, 300] {
                let a = Axis::tiled(extent, t);
                assert_eq!(a.sum(), u64::from(extent));
            }
        }
    }

    #[test]
    fn axis_refine_multiplies_multiplicities() {
        let a = Axis::balanced(56, 4); // 4 x 14
        let r = a.refine(|e| Axis::tiled(e, 8)); // each 14 -> 8 + 6
        assert_eq!(r.sum(), 56);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn decompose_smoke_on_common_layer() {
        let d = decompose(&common_layer(), &arch(), &simple_mapping()).unwrap();
        assert_eq!(d.volumes.mac_ops, common_layer().macs());
        assert!(d.utilization > 0.0 && d.utilization <= 1.0);
        assert!(d.compute_cycles > 0);
        assert!(!d.nest.is_empty());
        // Footprint tables align with nest positions.
        assert_eq!(d.footprints.core_input.len(), d.nest.len() + 1);
        assert_eq!(d.footprints.chiplet_input.len(), d.nest.len() + 1);
        assert_eq!(d.footprints.stream_weight.len(), d.nest.len() + 1);
        // Footprints are monotone non-decreasing outward.
        for w in d.footprints.chiplet_input.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for w in d.footprints.stream_weight.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn channel_package_rotation_shares_dram_reads() {
        let layer = common_layer();
        let mut m = simple_mapping();
        let ring = decompose(&layer, &arch(), &m).unwrap();
        m.rotation = RotationMode::DramOnly;
        let noring = decompose(&layer, &arch(), &m).unwrap();
        // Ring: DRAM input reads shrink by N_P, D2D appears.
        assert_eq!(noring.volumes.d2d_input_base, 0);
        assert_eq!(
            ring.volumes.dram_input_base * 4,
            noring.volumes.dram_input_base
        );
        assert_eq!(
            ring.volumes.d2d_input_base,
            ring.volumes.dram_input_base * 3
        );
        // Both deliver the same bits into the A-L2s.
        assert_eq!(ring.volumes.a_l2_fill_base, noring.volumes.a_l2_fill_base);
        assert_eq!(
            ring.volumes.a_l2_fill_base,
            ring.volumes.dram_input_base + ring.volumes.d2d_input_base
        );
    }

    #[test]
    fn planar_package_rotates_weights_not_inputs() {
        let layer = common_layer();
        let m = Mapping {
            package: PackagePartition::Planar(PlanarGrid::new(2, 2)),
            ..simple_mapping()
        };
        let d = decompose(&layer, &arch(), &m).unwrap();
        assert!(d.rotate_weights);
        assert!(!d.rotate_inputs);
        assert_eq!(d.volumes.d2d_input_base, 0);
        assert_eq!(d.volumes.d2d_weight_base, layer.weight_elems() * 8 * 3);
        assert_eq!(d.volumes.dram_weight_base, layer.weight_elems() * 8);
    }

    #[test]
    fn c_type_weights_are_private_no_rotation() {
        let d = decompose(&common_layer(), &arch(), &simple_mapping()).unwrap();
        assert!(d.rotate_inputs);
        assert!(!d.rotate_weights);
        assert_eq!(d.volumes.d2d_weight_base, 0);
        assert_eq!(
            d.volumes.dram_weight_base,
            common_layer().weight_elems() * 8
        );
    }

    #[test]
    fn output_volumes_are_exact_and_capacity_independent() {
        let layer = common_layer();
        let d = decompose(&layer, &arch(), &simple_mapping()).unwrap();
        assert_eq!(d.volumes.dram_output, layer.output_elems() * 8);
        assert_eq!(d.volumes.o_l2_write, layer.output_elems() * 8);
        // Every output accumulates kh*kw*ceil(ci/P) times at 24 bit.
        let acc = layer.output_elems()
            * u64::from(layer.kh())
            * u64::from(layer.kw())
            * u64::from(layer.ci_per_group().div_ceil(8))
            * 24;
        assert_eq!(d.volumes.o_l1_rmw, acc);
    }

    #[test]
    fn a_l1_reads_scale_inverse_with_lanes() {
        // Each A-L1 vector read is broadcast to L lanes, so with fully
        // utilized lanes the total read traffic is ~ MACs * 8 / L.
        let layer = common_layer();
        let m = Mapping {
            // P-type chiplet partition: one weight stream, all 8 lanes busy.
            chiplet: ChipletPartition::Planar(PlanarGrid::new(2, 4)),
            ..simple_mapping()
        };
        let d = decompose(&layer, &arch(), &m).unwrap();
        let approx = layer.macs() * 8 / 8; // L = 8
        let ratio = d.volumes.a_l1_read as f64 / approx as f64;
        assert!((0.9..1.5).contains(&ratio), "ratio {ratio}");
        // Under-utilized lanes (C-type split leaving 2 channels per stream)
        // read proportionally more per useful MAC.
        let under = decompose(&layer, &arch(), &simple_mapping()).unwrap();
        assert!(under.volumes.a_l1_read > d.volumes.a_l1_read);
    }

    #[test]
    fn structural_errors_are_reported() {
        let layer = common_layer();
        // Grid that does not match N_P.
        let m = Mapping {
            package: PackagePartition::Planar(PlanarGrid::new(3, 1)),
            ..simple_mapping()
        };
        assert!(matches!(
            decompose(&layer, &arch(), &m),
            Err(MappingError::GridMismatch { .. })
        ));
        // Chiplet channel split wider than the tile CO clamps (idle cores)
        // rather than erroring.
        let m = Mapping {
            chiplet_tile: Tile::new(28, 28, 4),
            ..simple_mapping()
        };
        let d = decompose(&layer, &arch(), &m).unwrap();
        assert_eq!(d.weight_streams, 4);
        // Core tile overflowing the O-L1 register file.
        let m = Mapping {
            core_plane: (32, 32),
            ..simple_mapping()
        };
        assert!(matches!(
            decompose(&layer, &arch(), &m),
            Err(MappingError::OL1Overflow { .. })
        ));
    }

    #[test]
    fn pointwise_layer_decomposes() {
        let layer = zoo::resnet50(224).layer("res2a_branch2a").cloned().unwrap();
        let m = simple_mapping();
        let d = decompose(&layer, &arch(), &m).unwrap();
        assert_eq!(d.volumes.mac_ops, layer.macs());
        // 1x1 kernels: window sums equal pixel sums, so the A-L2 fill equals
        // the consumed activation volume exactly (x N_P chiplets sharing).
        assert_eq!(d.volumes.a_l2_fill_base, layer.input_bits() * 4);
    }

    #[test]
    fn depthwise_disables_input_rotation() {
        let layer = zoo::mobilenet_v2(224)
            .layer("block2_dwise")
            .cloned()
            .unwrap();
        let m = Mapping {
            chiplet_tile: Tile::new(16, 16, 24),
            ..simple_mapping()
        };
        let d = decompose(&layer, &arch(), &m).unwrap();
        assert!(!d.rotate_inputs);
        assert_eq!(d.volumes.d2d_input_base, 0);
    }

    #[test]
    fn utilization_drops_for_thin_layers_with_wide_lanes() {
        // "The hardware with too high channel-wise parallelism is improper
        // for the thin layer" (Section IV-D).
        let thin = ConvSpec::new("thin", 56, 56, 64, 3, 1, 1, 8).unwrap();
        let wide = ConvSpec::new("wide", 56, 56, 64, 3, 1, 1, 512).unwrap();
        let m = |co: u32| Mapping {
            chiplet_tile: Tile::new(14, 14, co),
            ..simple_mapping()
        };
        // Use a single-chiplet machine so the thin layer is legal.
        let mut a = arch();
        a.chiplets = 1;
        let d_thin = decompose(&thin, &a, &m(8)).unwrap();
        let d_wide = decompose(&wide, &a, &m(64)).unwrap();
        assert!(d_thin.utilization < d_wide.utilization);
    }
}
