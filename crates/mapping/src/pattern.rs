//! Partition-pattern selection (Section IV-C of the paper).
//!
//! With the same number of tiles, the aspect ratio of a planar partition
//! changes both the redundant halo access (Figure 7) and the DRAM sharing
//! conflict (Figure 8). The paper's conclusions, which this module encodes
//! as a reusable policy:
//!
//! * **temporal tiles** (many, small): prefer the *square* pattern — it
//!   minimizes halo perimeter per tile;
//! * **package-level spatial tiles** (only `N_P` of them): prefer the
//!   *rectangle/stripe* pattern — it caps the number of chiplets sharing any
//!   halo region at two, avoiding DRAM access conflicts, at a small
//!   redundancy cost.

use baton_model::{max_sharing_degree, planar_redundancy, ConvSpec, PlanarGrid};
use serde::{Deserialize, Serialize};

/// Where a planar partition is applied, which decides the preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternContext {
    /// The package-level spatial primitive (N_P tiles, DRAM-conflict bound).
    PackageSpatial,
    /// The chiplet-level spatial primitive (on-chip, flexible control).
    ChipletSpatial,
    /// Temporal tiling (many small tiles).
    Temporal,
}

/// Picks the preferred grid for `tiles` partitions of `layer`'s output plane
/// in the given context, following the Section IV-C policy.
pub fn preferred_grid(layer: &ConvSpec, tiles: u32, context: PatternContext) -> PlanarGrid {
    match context {
        PatternContext::Temporal | PatternContext::ChipletSpatial => {
            // Square minimizes halo perimeter; among the candidates with
            // minimal redundancy pick the squarest.
            best_by_redundancy(layer, tiles)
        }
        PatternContext::PackageSpatial => {
            // Cap the sharing degree first (DRAM conflicts), then minimize
            // redundancy among the remaining grids.
            let grids = PlanarGrid::factor_grids(tiles);
            let min_sharing = grids
                .iter()
                .map(|&g| max_sharing_degree(layer, g))
                .min()
                .unwrap_or(1);
            grids
                .into_iter()
                .filter(|&g| max_sharing_degree(layer, g) == min_sharing)
                .min_by(|&a, &b| {
                    planar_redundancy(layer, a)
                        .overhead()
                        .total_cmp(&planar_redundancy(layer, b).overhead())
                })
                .expect("factor grids are never empty")
        }
    }
}

fn best_by_redundancy(layer: &ConvSpec, tiles: u32) -> PlanarGrid {
    PlanarGrid::factor_grids(tiles)
        .into_iter()
        .min_by(|&a, &b| {
            planar_redundancy(layer, a)
                .overhead()
                .total_cmp(&planar_redundancy(layer, b).overhead())
                .then(a.skew().cmp(&b.skew()))
        })
        .expect("factor grids are never empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_layer() -> ConvSpec {
        ConvSpec::new("c", 256, 256, 16, 3, 1, 1, 32).unwrap()
    }

    #[test]
    fn temporal_tiles_prefer_square() {
        let g = preferred_grid(&big_layer(), 16, PatternContext::Temporal);
        assert_eq!(g.skew(), 1, "expected 4x4, got {}x{}", g.rows(), g.cols());
    }

    #[test]
    fn package_tiles_cap_the_sharing_degree() {
        // Figure 8: the 2x2 split shares halos among 4 chiplets; the policy
        // must pick a stripe/rectangle capping the degree at 2.
        let layer = big_layer();
        let g = preferred_grid(&layer, 4, PatternContext::PackageSpatial);
        assert!(max_sharing_degree(&layer, g) <= 2);
        assert_ne!((g.rows(), g.cols()), (2, 2));
    }

    #[test]
    fn pointwise_layers_are_indifferent_but_legal() {
        // 1x1 kernels have no halo: every grid has zero redundancy and unit
        // sharing; any answer is fine, but the call must not panic.
        let layer = ConvSpec::pointwise("pw", 64, 64, 8, 8).unwrap();
        let g = preferred_grid(&layer, 8, PatternContext::PackageSpatial);
        assert_eq!(g.tiles(), 8);
        assert_eq!(max_sharing_degree(&layer, g), 1);
    }

    #[test]
    fn chiplet_spatial_follows_the_temporal_preference() {
        let layer = big_layer();
        let a = preferred_grid(&layer, 16, PatternContext::ChipletSpatial);
        let b = preferred_grid(&layer, 16, PatternContext::Temporal);
        assert_eq!(a, b);
    }

    #[test]
    fn tall_planes_prefer_matching_grids() {
        // A plane much taller than wide: splitting rows is cheaper than
        // splitting columns for the same tile count.
        let layer = baton_model::ConvSpecBuilder::new("tall", 256, 32, 8, 8)
            .kernel(3, 3)
            .padding(1, 1)
            .build()
            .unwrap();
        let g = preferred_grid(&layer, 8, PatternContext::Temporal);
        assert!(g.rows() > g.cols(), "got {}x{}", g.rows(), g.cols());
    }
}
