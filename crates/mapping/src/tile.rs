//! Output tiles: the unit of one workload assignment.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An output tile `HO x WO x CO` — the paper's "single chiplet workload"
/// (`HO_t x WO_t x CO_t`) or, with `co == L`, the per-assignment core
/// workload (`HO_c x WO_c x L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// Tile height in output rows.
    pub ho: u32,
    /// Tile width in output columns.
    pub wo: u32,
    /// Tile depth in output channels.
    pub co: u32,
}

impl Tile {
    /// Creates a tile.
    pub fn new(ho: u32, wo: u32, co: u32) -> Self {
        Self { ho, wo, co }
    }

    /// Output elements in the tile.
    pub fn elems(&self) -> u64 {
        u64::from(self.ho) * u64::from(self.wo) * u64::from(self.co)
    }

    /// Planar elements (one channel).
    pub fn plane_elems(&self) -> u64 {
        u64::from(self.ho) * u64::from(self.wo)
    }

    /// Clamps the tile to a bounding extent (tiles at a part boundary).
    pub fn clamped(&self, ho_max: u32, wo_max: u32, co_max: u32) -> Tile {
        Tile::new(
            self.ho.min(ho_max),
            self.wo.min(wo_max),
            self.co.min(co_max),
        )
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.ho, self.wo, self.co)
    }
}

/// Ceiling division for loop counts.
pub(crate) fn ceil_div(a: u32, b: u32) -> u32 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_volumes() {
        let t = Tile::new(8, 16, 32);
        assert_eq!(t.elems(), 8 * 16 * 32);
        assert_eq!(t.plane_elems(), 128);
    }

    #[test]
    fn clamping_at_boundaries() {
        let t = Tile::new(8, 8, 64).clamped(5, 8, 48);
        assert_eq!(t, Tile::new(5, 8, 48));
    }

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(8, 2), 4);
        assert_eq!(ceil_div(1, 8), 1);
    }
}
