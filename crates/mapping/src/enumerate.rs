//! Candidate mapping generation for the exhaustive post-design search.
//!
//! The paper's mapping analysis engine "adopts exhaustive search to evaluate
//! hundreds of cases, including partition patterns with different
//! height-width ratios and loop transformation of various spatial-temporal
//! combinations" (Section V-C). This module generates exactly that candidate
//! set: every legal spatial pair, both temporal orders per level, a ladder of
//! chiplet-tile shapes and the partition-pattern grids.
//!
//! Candidates are produced by [`visit_candidates`], a visitor that emits the
//! canonical candidate stream directly — already deduplicated and in the
//! stable [`mapping_key`] order — so the search hot path never materializes,
//! sorts, or discards duplicate mappings. Alongside each mapping the visitor
//! hands out a *geometry id*: a dense index over the distinct
//! `(package, chiplet, tile)` triples, which the batched evaluator uses to
//! memoize the order/rotation-independent decomposition arithmetic (every
//! geometry is shared by the 4 temporal-order combos x rotation variants).

use crate::mapping::Mapping;
use crate::primitives::{ChipletPartition, PackagePartition, RotationMode, TemporalOrder};
use crate::tile::{ceil_div, Tile};
use baton_arch::PackageConfig;
use baton_model::{ConvSpec, PlanarGrid, PSUM_BITS};
use baton_telemetry::{count_n, Counter};

/// Knobs bounding the candidate set size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumOptions {
    /// Plane-axis tile-count ladder: a fraction `f` yields tiles of
    /// `ceil(extent / f)`.
    pub plane_fractions: &'static [u32],
    /// Channel-axis tile-count ladder.
    pub co_fractions: &'static [u32],
    /// Inter-chiplet sharing modes to enumerate. Rotation is a per-mapping
    /// decision: it usually wins (ring bits cost 1.17 pJ vs 8.75 pJ DRAM)
    /// but loses when small buffers force re-rotation, so the search sees
    /// both.
    pub rotations: &'static [RotationMode],
}

impl Default for EnumOptions {
    fn default() -> Self {
        Self {
            plane_fractions: &[1, 2, 4, 8, 16, 32],
            co_fractions: &[1, 2, 4],
            rotations: &[RotationMode::Ring, RotationMode::DramOnly],
        }
    }
}

/// Enumeration totals reported by [`visit_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnumStats {
    /// Canonical (deduplicated) candidates emitted.
    pub emitted: usize,
    /// Distinct `(package, chiplet, tile)` geometries; emitted geometry ids
    /// are dense in `0..geoms`.
    pub geoms: usize,
}

/// Generates the candidate mappings for `layer` on `arch` with default
/// options. Structurally illegal combinations are filtered; buffer
/// feasibility is left to [`crate::decompose()`](crate::decompose::decompose), which performs the exact
/// checks.
pub fn candidates(layer: &ConvSpec, arch: &PackageConfig) -> Vec<Mapping> {
    candidates_with(layer, arch, EnumOptions::default())
}

/// Generates candidates with explicit options.
pub fn candidates_with(layer: &ConvSpec, arch: &PackageConfig, opts: EnumOptions) -> Vec<Mapping> {
    let mut out = Vec::new();
    visit_candidates(layer, arch, opts, |_, m| out.push(m));
    out
}

/// Enumerates into caller-owned buffers (cleared first, capacity kept), so a
/// steady-state search re-uses one allocation per thread. `geom_ids[i]` is
/// the geometry id of `cands[i]`.
pub fn enumerate_into(
    layer: &ConvSpec,
    arch: &PackageConfig,
    opts: EnumOptions,
    cands: &mut Vec<Mapping>,
    geom_ids: &mut Vec<u32>,
) -> EnumStats {
    cands.clear();
    geom_ids.clear();
    visit_candidates(layer, arch, opts, |g, m| {
        cands.push(m);
        geom_ids.push(g);
    })
}

/// Emits the canonical candidate set through `f(geom_id, mapping)`.
///
/// The stream is strictly ascending in [`mapping_key`] order — package,
/// chiplet partition, temporal-order combo, tile, rotation — with duplicates
/// suppressed *at the source*: distinct `(fh, fw, fc)` ladder entries that
/// collapse onto the same tile are skipped before a `Mapping` is ever built,
/// and [`Counter::CandidatesDeduped`] counts them exactly as the old
/// build-then-dedup pipeline did. `Counter::CandidatesGenerated` counts the
/// emitted stream and `Counter::CandidatesStructurallyRejected` the ladder
/// combos the structural filter removed.
pub fn visit_candidates(
    layer: &ConvSpec,
    arch: &PackageConfig,
    opts: EnumOptions,
    mut f: impl FnMut(u32, Mapping),
) -> EnumStats {
    let n_p = arch.chiplets;
    let n_c = arch.chiplet.cores;
    let (ho, wo, co) = (layer.ho(), layer.wo(), layer.co());

    // Rotations in key order (Ring < DramOnly), independent of the option
    // slice's order — the canonical stream sorts rotation last.
    let rot_ring = opts.rotations.contains(&RotationMode::Ring);
    let rot_dram = opts.rotations.contains(&RotationMode::DramOnly);

    let mut emitted = 0usize;
    let mut deduped = 0u64;
    let mut rejected = 0u64;
    let mut geoms = 0u32;
    // Reused across (package, chiplet) groups; bounded by the ladder size.
    let mut tiles: Vec<Tile> = Vec::new();
    let mut planes: Vec<(u32, u32)> = Vec::new();

    for pkg in package_options(layer, n_p) {
        // The plane extents a single chiplet owns under this partition.
        let (part_h, part_w, part_co) = match &pkg {
            PackagePartition::Channel => (ho, wo, ceil_div(co, n_p)),
            PackagePartition::Planar(g) => (ceil_div(ho, g.rows()), ceil_div(wo, g.cols()), co),
        };
        for chip in chiplet_options(n_c) {
            tiles.clear();
            planes.clear();
            let mut combos = 0u64;
            for &fh in opts.plane_fractions {
                for &fw in opts.plane_fractions {
                    for &fc in opts.co_fractions {
                        let tile = Tile::new(
                            ceil_div(part_h, fh).max(1),
                            ceil_div(part_w, fw).max(1),
                            ceil_div(part_co, fc).max(1),
                        );
                        if !tile_fits_partition(&chip, tile, n_c) {
                            rejected += 1;
                            continue;
                        }
                        combos += 1;
                        tiles.push(tile);
                    }
                }
            }
            tiles.sort_by_key(|t| (t.ho, t.wo, t.co));
            tiles.dedup();
            // A 1-chiplet ring is inert: the DramOnly twin would be an exact
            // duplicate, so it is skipped at the source.
            let eff_rot = u64::from(rot_ring) + u64::from(rot_dram && n_p > 1);
            let orders = (TemporalOrder::ALL.len() * TemporalOrder::ALL.len()) as u64;
            deduped += (combos - tiles.len() as u64) * orders * eff_rot;
            planes.extend(
                tiles
                    .iter()
                    .map(|&t| core_plane_for(layer, arch, &chip, t, n_c)),
            );
            let group_base = geoms;
            geoms += tiles.len() as u32;
            for pkg_order in TemporalOrder::ALL {
                for chip_order in TemporalOrder::ALL {
                    for (ti, (&tile, &core_plane)) in tiles.iter().zip(planes.iter()).enumerate() {
                        for rotation in [RotationMode::Ring, RotationMode::DramOnly] {
                            match rotation {
                                RotationMode::Ring if !rot_ring => continue,
                                RotationMode::DramOnly if !(rot_dram && n_p > 1) => continue,
                                _ => {}
                            }
                            emitted += 1;
                            f(
                                group_base + ti as u32,
                                Mapping {
                                    package: pkg,
                                    chiplet: chip,
                                    package_order: pkg_order,
                                    chiplet_order: chip_order,
                                    chiplet_tile: tile,
                                    core_plane,
                                    rotation,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
    if emitted == 0 {
        // Fallback for thin layers (e.g. a 10-class FC head): accept idle
        // units rather than failing to map at all. The single geometry gets
        // id 0; the 1-chiplet DramOnly skip does NOT apply here (the layer
        // would otherwise be unmappable).
        let tile = Tile::new(ho, wo, co.max(1));
        let core_plane = core_plane_for(layer, arch, &ChipletPartition::Channel, tile, n_c);
        geoms = 1;
        for pkg_order in TemporalOrder::ALL {
            for chip_order in TemporalOrder::ALL {
                for rotation in [RotationMode::Ring, RotationMode::DramOnly] {
                    match rotation {
                        RotationMode::Ring if !rot_ring => continue,
                        RotationMode::DramOnly if !rot_dram => continue,
                        _ => {}
                    }
                    emitted += 1;
                    f(
                        0,
                        Mapping {
                            package: PackagePartition::Channel,
                            chiplet: ChipletPartition::Channel,
                            package_order: pkg_order,
                            chiplet_order: chip_order,
                            chiplet_tile: tile,
                            core_plane,
                            rotation,
                        },
                    );
                }
            }
        }
    }
    count_n(Counter::CandidatesGenerated, emitted as u64);
    count_n(Counter::CandidatesDeduped, deduped);
    count_n(Counter::CandidatesStructurallyRejected, rejected);
    EnumStats {
        emitted,
        geoms: geoms as usize,
    }
}

/// Cheap upper bound on the number of candidates [`candidates_with`] can
/// emit for `layer` on `arch`, *without* building any of them: the raw
/// product of the option ladders, before the structural filter and dedup.
///
/// Useful for deciding up front whether a layer's search is worth fanning
/// out (the parallel search itself chunks on the exact post-filter count,
/// which it has in hand anyway) and for capacity-planning sweep batches.
pub fn candidate_count_bound(layer: &ConvSpec, arch: &PackageConfig, opts: EnumOptions) -> usize {
    let pkg = package_options(layer, arch.chiplets).len();
    let chip = chiplet_options(arch.chiplet.cores).len();
    let tiles = opts.plane_fractions.len() * opts.plane_fractions.len() * opts.co_fractions.len();
    let orders = TemporalOrder::ALL.len() * TemporalOrder::ALL.len();
    // The thin-layer fallback emits at most orders x rotations mappings.
    (pkg * chip * tiles * orders * opts.rotations.len()).max(orders * opts.rotations.len())
}

/// Sort/dedup key: a fixed-width numeric encoding of every mapping field.
/// [`visit_candidates`] emits in strictly ascending key order by
/// construction; the key survives as the canonical-order witness the tests
/// hold the visitor to.
#[cfg_attr(not(test), allow(dead_code))]
fn mapping_key(m: &Mapping) -> [u32; 13] {
    let (pkg_tag, pkg_r, pkg_c) = match m.package {
        PackagePartition::Channel => (0, 0, 0),
        PackagePartition::Planar(g) => (1, g.rows(), g.cols()),
    };
    let (chip_tag, chip_w, chip_r, chip_c) = match m.chiplet {
        ChipletPartition::Channel => (0, 0, 0, 0),
        ChipletPartition::Planar(g) => (1, 0, g.rows(), g.cols()),
        ChipletPartition::Hybrid { channel_ways, grid } => {
            (2, channel_ways, grid.rows(), grid.cols())
        }
    };
    [
        pkg_tag,
        pkg_r,
        pkg_c,
        chip_tag,
        chip_w,
        chip_r,
        chip_c,
        (m.package_order == TemporalOrder::PlanePriority) as u32 * 2
            + (m.chiplet_order == TemporalOrder::PlanePriority) as u32,
        m.chiplet_tile.ho,
        m.chiplet_tile.wo,
        m.chiplet_tile.co,
        m.core_plane.0 << 16 | m.core_plane.1,
        (m.rotation == RotationMode::DramOnly) as u32,
    ]
}

/// Legal package-level spatial partitions for this layer, in ascending
/// [`mapping_key`] order (Channel, then planar grids by `(rows, cols)`).
pub fn package_options(layer: &ConvSpec, n_p: u32) -> Vec<PackagePartition> {
    let mut out = Vec::new();
    if layer.co() >= n_p {
        out.push(PackagePartition::Channel);
    }
    if n_p == 1 {
        // A single chiplet needs no partition; Channel is the identity and
        // always legal.
        if out.is_empty() {
            out.push(PackagePartition::Channel);
        }
        return out;
    }
    for g in PlanarGrid::factor_grids(n_p) {
        if g.rows() <= layer.ho() && g.cols() <= layer.wo() {
            out.push(PackagePartition::Planar(g));
        }
    }
    out
}

/// Legal chiplet-level spatial partitions for `n_c` cores, in ascending
/// [`mapping_key`] order (Channel, planar grids, then hybrids by channel
/// ways).
pub fn chiplet_options(n_c: u32) -> Vec<ChipletPartition> {
    let mut out = vec![ChipletPartition::Channel];
    if n_c == 1 {
        return out;
    }
    for g in PlanarGrid::factor_grids(n_c) {
        out.push(ChipletPartition::Planar(g));
    }
    // Hybrid: channel_ways strictly between 1 and n_c.
    let mut cw = 2;
    while cw < n_c {
        if n_c.is_multiple_of(cw) {
            for g in PlanarGrid::factor_grids(n_c / cw) {
                out.push(ChipletPartition::Hybrid {
                    channel_ways: cw,
                    grid: g,
                });
            }
        }
        cw *= 2;
    }
    out
}

/// Quick structural filter mirroring the decompose-time checks, so the
/// candidate list stays clean.
fn tile_fits_partition(chip: &ChipletPartition, tile: Tile, n_c: u32) -> bool {
    match chip {
        ChipletPartition::Channel => tile.co >= n_c,
        ChipletPartition::Planar(g) => g.rows() <= tile.ho && g.cols() <= tile.wo,
        ChipletPartition::Hybrid { channel_ways, grid } => {
            tile.co >= *channel_ways && grid.rows() <= tile.ho && grid.cols() <= tile.wo
        }
    }
}

/// Picks the core tile: the largest square-ish `HO_c x WO_c` that fits both
/// the O-L1 psum register file and the A-L1 chunk floor (Section IV-C
/// recommends the square pattern for the fine temporal tiles).
pub fn core_plane_for(
    layer: &ConvSpec,
    arch: &PackageConfig,
    chip: &ChipletPartition,
    tile: Tile,
    n_c: u32,
) -> (u32, u32) {
    let core = &arch.chiplet.core;
    let slots = core.o_l1_bytes * 8 / PSUM_BITS;
    let cap = (slots / u64::from(core.lanes).max(1)).max(1);
    let (grid_r, grid_c) = match chip {
        ChipletPartition::Channel => (1, 1),
        ChipletPartition::Planar(g) => (g.rows(), g.cols()),
        ChipletPartition::Hybrid { grid, .. } => (grid.rows(), grid.cols()),
    };
    let _ = n_c;
    let sub_h = ceil_div(tile.ho, grid_r).max(1);
    let sub_w = ceil_div(tile.wo, grid_c).max(1);
    let chunk = u64::from(core.vector.min(layer.ci_per_group().max(1)));

    // Start from the square bound and shrink until both floors pass.
    let mut h = (cap as f64).sqrt().floor() as u32;
    let mut w = h.max(1);
    h = h.clamp(1, sub_h);
    w = w.clamp(1, sub_w);
    loop {
        let fits_o_l1 = u64::from(h) * u64::from(w) <= cap;
        let win = |t: u32, s: u32, k: u32| u64::from((t - 1) * s + k);
        let need =
            win(h, layer.stride_h(), layer.kh()) * win(w, layer.stride_w(), layer.kw()) * chunk;
        let fits_a_l1 = need <= core.a_l1_bytes;
        if fits_o_l1 && fits_a_l1 {
            return (h, w);
        }
        if h >= w && h > 1 {
            h -= 1;
        } else if w > 1 {
            w -= 1;
        } else {
            return (1, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_arch::presets;
    use baton_model::zoo;

    fn arch() -> PackageConfig {
        presets::case_study_accelerator()
    }

    #[test]
    fn generates_hundreds_of_candidates_for_a_common_layer() {
        let layer = zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap();
        let maps = candidates(&layer, &arch());
        assert!(
            maps.len() >= 100,
            "expected hundreds of cases, got {}",
            maps.len()
        );
    }

    #[test]
    fn channel_package_partition_removed_for_small_co() {
        // Paper Figure 11 removes the (C, C) option for layers whose output
        // channels cannot split across chiplets.
        let thin = ConvSpec::new("thin", 64, 64, 16, 3, 1, 1, 2).unwrap();
        let opts = package_options(&thin, 4);
        assert!(opts.iter().all(|p| !matches!(p, PackagePartition::Channel)));
        // But planar options survive.
        assert!(!opts.is_empty());
    }

    #[test]
    fn single_chiplet_has_identity_partition() {
        let layer = zoo::vgg16(224).layer("conv1_1").cloned().unwrap();
        let opts = package_options(&layer, 1);
        assert_eq!(opts, vec![PackagePartition::Channel]);
    }

    #[test]
    fn chiplet_options_cover_c_p_h() {
        let opts = chiplet_options(8);
        let tags: std::collections::BTreeSet<char> = opts.iter().map(|c| c.tag()).collect();
        assert!(tags.contains(&'C'));
        assert!(tags.contains(&'P'));
        assert!(tags.contains(&'H'));
    }

    #[test]
    fn core_plane_respects_o_l1() {
        let layer = zoo::vgg16(224).layer("conv1_1").cloned().unwrap();
        let a = arch();
        let (h, w) = core_plane_for(
            &layer,
            &a,
            &ChipletPartition::Channel,
            Tile::new(56, 56, 64),
            8,
        );
        let cap = a.chiplet.core.o_l1_bytes * 8 / 24 / u64::from(a.chiplet.core.lanes);
        assert!(u64::from(h) * u64::from(w) <= cap);
        assert!(h >= 1 && w >= 1);
    }

    #[test]
    fn all_candidates_have_positive_tiles() {
        let layer = zoo::resnet50(224).layer("conv1").cloned().unwrap();
        for m in candidates(&layer, &arch()) {
            assert!(m.chiplet_tile.ho >= 1 && m.chiplet_tile.wo >= 1 && m.chiplet_tile.co >= 1);
            assert!(m.core_plane.0 >= 1 && m.core_plane.1 >= 1);
        }
    }

    #[test]
    fn count_bound_dominates_the_real_candidate_set() {
        let a = arch();
        for layer in [
            zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap(),
            zoo::vgg16(224).layer("conv1_1").cloned().unwrap(),
            // Thin FC head exercises the fallback path.
            ConvSpec::fully_connected("fc", 4096, 10).unwrap(),
        ] {
            let bound = candidate_count_bound(&layer, &a, EnumOptions::default());
            let real = candidates(&layer, &a).len();
            assert!(real <= bound, "{}: {real} > bound {bound}", layer.name());
            assert!(bound > 0);
        }
    }

    #[test]
    fn candidates_are_deduplicated() {
        let layer = zoo::resnet50(224).layer("res2a_branch2a").cloned().unwrap();
        let maps = candidates(&layer, &arch());
        let mut keys: Vec<String> = maps.iter().map(|m| m.to_string()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn emission_is_strictly_ascending_in_key_order() {
        // The canonical stream IS the sorted, deduplicated stream: strictly
        // ascending keys prove both at once, for main path and fallback.
        let a = arch();
        for layer in [
            zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap(),
            zoo::mobilenet_v2(224)
                .layer("block2_dwise")
                .cloned()
                .unwrap(),
            ConvSpec::fully_connected("fc", 4096, 10).unwrap(),
        ] {
            let maps = candidates(&layer, &a);
            for w in maps.windows(2) {
                assert!(
                    mapping_key(&w[0]) < mapping_key(&w[1]),
                    "{}: out of order or duplicate: {:?} then {:?}",
                    layer.name(),
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn visitor_matches_the_build_then_dedup_reference() {
        // Reference pipeline: generate every raw candidate the pre-visitor
        // enumerator built (duplicates included), then sort + dedup by key.
        // The visitor must reproduce it byte for byte, and its dedup counter
        // must equal the number of raw candidates discarded.
        let a = arch();
        let opts = EnumOptions::default();
        for layer in [
            zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap(),
            zoo::vgg16(224).layer("conv1_1").cloned().unwrap(),
            zoo::mobilenet_v2(224)
                .layer("block2_dwise")
                .cloned()
                .unwrap(),
        ] {
            let mut raw = Vec::new();
            for pkg in package_options(&layer, a.chiplets) {
                let (ho, wo, co) = (layer.ho(), layer.wo(), layer.co());
                let (part_h, part_w, part_co) = match &pkg {
                    PackagePartition::Channel => (ho, wo, ceil_div(co, a.chiplets)),
                    PackagePartition::Planar(g) => {
                        (ceil_div(ho, g.rows()), ceil_div(wo, g.cols()), co)
                    }
                };
                for chip in chiplet_options(a.chiplet.cores) {
                    for &fh in opts.plane_fractions {
                        for &fw in opts.plane_fractions {
                            for &fc in opts.co_fractions {
                                let tile = Tile::new(
                                    ceil_div(part_h, fh).max(1),
                                    ceil_div(part_w, fw).max(1),
                                    ceil_div(part_co, fc).max(1),
                                );
                                if !tile_fits_partition(&chip, tile, a.chiplet.cores) {
                                    continue;
                                }
                                let core_plane =
                                    core_plane_for(&layer, &a, &chip, tile, a.chiplet.cores);
                                for pkg_order in TemporalOrder::ALL {
                                    for chip_order in TemporalOrder::ALL {
                                        for &rotation in opts.rotations {
                                            if a.chiplets == 1 && rotation == RotationMode::DramOnly
                                            {
                                                continue;
                                            }
                                            raw.push(Mapping {
                                                package: pkg,
                                                chiplet: chip,
                                                package_order: pkg_order,
                                                chiplet_order: chip_order,
                                                chiplet_tile: tile,
                                                core_plane,
                                                rotation,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            let raw_len = raw.len();
            raw.sort_by_key(mapping_key);
            raw.dedup_by_key(|m| mapping_key(m));

            let mut got = Vec::new();
            let stats = visit_candidates(&layer, &a, opts, |_, m| got.push(m));
            assert_eq!(got, raw, "{}", layer.name());
            assert_eq!(stats.emitted, raw.len(), "{}", layer.name());
            // At least one of the layers must actually exercise dedup for
            // the comparison to mean anything.
            if layer.name() == "res2a_branch2b" {
                assert!(raw_len > raw.len(), "expected duplicates in reference");
            }
        }
    }

    #[test]
    fn geom_ids_are_dense_and_shared_across_orders_and_rotations() {
        use std::collections::BTreeMap;
        let a = arch();
        let layer = zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap();
        let mut cands = Vec::new();
        let mut ids = Vec::new();
        let stats = enumerate_into(&layer, &a, EnumOptions::default(), &mut cands, &mut ids);
        assert_eq!(cands.len(), ids.len());
        assert_eq!(stats.emitted, cands.len());
        // Dense: every id below `geoms` appears.
        let max = ids.iter().copied().max().unwrap() as usize;
        assert_eq!(max + 1, stats.geoms);
        // Consistent: one id <=> one (package, chiplet, tile, core_plane).
        let mut seen: BTreeMap<u32, String> = BTreeMap::new();
        for (m, &g) in cands.iter().zip(&ids) {
            let geom_key = format!(
                "{:?}|{:?}|{:?}|{:?}",
                m.package, m.chiplet, m.chiplet_tile, m.core_plane
            );
            match seen.get(&g) {
                Some(k) => assert_eq!(k, &geom_key, "geom id {g} maps to two geometries"),
                None => {
                    seen.insert(g, geom_key);
                }
            }
        }
        // Every geometry is shared by 4 temporal combos x 2 rotations.
        let mut uses: BTreeMap<u32, u32> = BTreeMap::new();
        for &g in &ids {
            *uses.entry(g).or_default() += 1;
        }
        assert!(uses.values().all(|&n| n == 8), "{uses:?}");
    }

    use baton_model::ConvSpec;
}
