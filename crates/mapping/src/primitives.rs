//! The spatial, temporal and rotating primitives of the output-centric
//! dataflow description (Section III-B and IV-A).

use std::fmt;

use baton_model::PlanarGrid;
use serde::{Deserialize, Serialize};

/// A loop dimension of the output-centric nest.
///
/// Thanks to the output-centric dataflow only the three output dimensions
/// appear in the temporal nests (the reduction dimensions CI/KH/KW are fully
/// contained in the core compute block), but the reduction dims are kept for
/// reporting the inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dim {
    /// Output channels.
    Co,
    /// Output rows.
    Ho,
    /// Output columns.
    Wo,
    /// Input channels (reduction).
    Ci,
    /// Kernel rows (reduction).
    Kh,
    /// Kernel columns (reduction).
    Kw,
}

impl Dim {
    /// Whether a loop over this dimension changes the *input* working set.
    pub fn input_relevant(self) -> bool {
        matches!(self, Dim::Ho | Dim::Wo | Dim::Ci | Dim::Kh | Dim::Kw)
    }

    /// Whether a loop over this dimension changes the *weight* working set.
    pub fn weight_relevant(self) -> bool {
        matches!(self, Dim::Co | Dim::Ci | Dim::Kh | Dim::Kw)
    }

    /// Whether a loop over this dimension changes the *output* working set.
    pub fn output_relevant(self) -> bool {
        matches!(self, Dim::Co | Dim::Ho | Dim::Wo)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::Co => "CO",
            Dim::Ho => "HO",
            Dim::Wo => "WO",
            Dim::Ci => "CI",
            Dim::Kh => "KH",
            Dim::Kw => "KW",
        };
        f.write_str(s)
    }
}

/// Loop-unrolling order of a temporal primitive (Section IV-A.2).
///
/// The output-centric dataflow shrinks the unrolling search from the
/// seven-dimensional loop nest to this binary choice per level: iterate the
/// channel dimension in the inner loop (weight-reuse friendly) or the planar
/// dimensions in the inner loop (activation-reuse friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalOrder {
    /// `CO` in the inner loop: consecutive steps revisit the same plane tile
    /// with new output channels.
    ChannelPriority,
    /// `HO`/`WO` in the inner loop: consecutive steps sweep the plane with
    /// the same output channels.
    PlanePriority,
}

impl TemporalOrder {
    /// Both orders, for enumeration.
    pub const ALL: [TemporalOrder; 2] =
        [TemporalOrder::ChannelPriority, TemporalOrder::PlanePriority];
}

impl fmt::Display for TemporalOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalOrder::ChannelPriority => f.write_str("channel-priority"),
            TemporalOrder::PlanePriority => f.write_str("plane-priority"),
        }
    }
}

/// Package-level spatial partition across `N_P` chiplets (Figure 5 (a)-(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackagePartition {
    /// C-type: split the output-channel dimension; chiplets share input
    /// activations (rotated over the ring) and hold distinct weights.
    Channel,
    /// P-type: split the output plane with the given pattern; chiplets share
    /// weights (rotated over the ring) and hold distinct activations. The
    /// grid must have `rows * cols == N_P`.
    Planar(PlanarGrid),
}

impl PackagePartition {
    /// Single-letter tag used in the paper's figure axes (`C` / `P`).
    pub fn tag(&self) -> char {
        match self {
            PackagePartition::Channel => 'C',
            PackagePartition::Planar(_) => 'P',
        }
    }
}

impl fmt::Display for PackagePartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackagePartition::Channel => f.write_str("C"),
            PackagePartition::Planar(g) => write!(f, "P[{}x{}]", g.rows(), g.cols()),
        }
    }
}

/// Chiplet-level spatial partition across `N_C` cores (Figure 5 (c)-(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipletPartition {
    /// C-type: cores split the chiplet tile's output channels; W-L1 buffers
    /// stay private, activations are multicast over the central bus.
    Channel,
    /// P-type: cores split the chiplet tile's plane; W-L1 buffers merge into
    /// one shared pool. `rows * cols == N_C`.
    Planar(PlanarGrid),
    /// H-type hybrid: both dimensions simultaneously;
    /// `channel_ways * grid.tiles() == N_C` (Figure 5 (e)).
    Hybrid {
        /// Number of output-channel groups.
        channel_ways: u32,
        /// Planar grid within each channel group.
        grid: PlanarGrid,
    },
}

impl ChipletPartition {
    /// Single-letter tag used in the paper's figure axes (`C` / `P` / `H`).
    pub fn tag(&self) -> char {
        match self {
            ChipletPartition::Channel => 'C',
            ChipletPartition::Planar(_) => 'P',
            ChipletPartition::Hybrid { .. } => 'H',
        }
    }

    /// Number of distinct weight streams among the cores (the number of
    /// W-L1 pool groups; Section III-A.2's sharing policy).
    pub fn weight_streams(&self, cores: u32) -> u32 {
        match self {
            ChipletPartition::Channel => cores,
            ChipletPartition::Planar(_) => 1,
            ChipletPartition::Hybrid { channel_ways, .. } => *channel_ways,
        }
    }

    /// Number of cores splitting the plane within one weight stream.
    pub fn plane_ways(&self, cores: u32) -> u32 {
        cores / self.weight_streams(cores).max(1)
    }
}

impl fmt::Display for ChipletPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipletPartition::Channel => f.write_str("C"),
            ChipletPartition::Planar(g) => write!(f, "P[{}x{}]", g.rows(), g.cols()),
            ChipletPartition::Hybrid { channel_ways, grid } => {
                write!(f, "H[{}c x {}x{}]", channel_ways, grid.rows(), grid.cols())
            }
        }
    }
}

/// How inter-chiplet data sharing is realized (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RotationMode {
    /// Rotating transfer over the directional ring: each chiplet loads
    /// `1/N_P` of the shared tensor from DRAM and forwards its slice
    /// `N_P - 1` times (the paper's mechanism).
    Ring,
    /// Ablation: no ring sharing; every chiplet loads the full shared tensor
    /// from DRAM itself.
    DramOnly,
}

impl fmt::Display for RotationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotationMode::Ring => f.write_str("ring"),
            RotationMode::DramOnly => f.write_str("dram-only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_flags_match_convolution_indexing() {
        // Inputs are indexed by (h, w, ci) via the sliding window; weights by
        // (co, ci, kh, kw); outputs by (co, ho, wo).
        assert!(Dim::Ho.input_relevant());
        assert!(!Dim::Co.input_relevant());
        assert!(Dim::Co.weight_relevant());
        assert!(!Dim::Ho.weight_relevant());
        assert!(Dim::Ci.weight_relevant() && Dim::Ci.input_relevant());
        assert!(!Dim::Ci.output_relevant());
    }

    #[test]
    fn weight_streams_per_partition() {
        use baton_model::PlanarGrid;
        assert_eq!(ChipletPartition::Channel.weight_streams(8), 8);
        assert_eq!(
            ChipletPartition::Planar(PlanarGrid::new(2, 4)).weight_streams(8),
            1
        );
        let h = ChipletPartition::Hybrid {
            channel_ways: 2,
            grid: PlanarGrid::new(2, 2),
        };
        assert_eq!(h.weight_streams(8), 2);
        assert_eq!(h.plane_ways(8), 4);
    }

    #[test]
    fn tags_match_figure_axes() {
        use baton_model::PlanarGrid;
        assert_eq!(PackagePartition::Channel.tag(), 'C');
        assert_eq!(PackagePartition::Planar(PlanarGrid::new(2, 2)).tag(), 'P');
        assert_eq!(ChipletPartition::Channel.tag(), 'C');
        assert_eq!(
            ChipletPartition::Hybrid {
                channel_ways: 2,
                grid: PlanarGrid::new(1, 4)
            }
            .tag(),
            'H'
        );
    }

    #[test]
    fn display_renders_grids() {
        use baton_model::PlanarGrid;
        let p = PackagePartition::Planar(PlanarGrid::new(2, 2));
        assert_eq!(p.to_string(), "P[2x2]");
        assert_eq!(
            TemporalOrder::ChannelPriority.to_string(),
            "channel-priority"
        );
        assert_eq!(RotationMode::Ring.to_string(), "ring");
    }
}
