//! Loop nests: the ordered temporal loop structure a mapping induces,
//! annotated with the working-set footprints the C3P methodology compares
//! against buffer capacities.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::primitives::Dim;

/// Hierarchy level a temporal loop belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopLevel {
    /// The rotating primitive inside the core-level block (Figure 4(b)).
    Rotation,
    /// Core-tile loops (chiplet-level temporal primitive).
    Core,
    /// Chiplet-tile loops (package-level temporal primitive).
    Chiplet,
}

impl fmt::Display for LoopLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopLevel::Rotation => f.write_str("rot"),
            LoopLevel::Core => f.write_str("core"),
            LoopLevel::Chiplet => f.write_str("chip"),
        }
    }
}

/// One temporal loop of the nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loop {
    /// Output dimension the loop iterates.
    pub dim: Dim,
    /// Trip count (1-count loops are kept out of nests).
    pub count: u64,
    /// Hierarchy level.
    pub level: LoopLevel,
}

/// An ordered loop nest, innermost first, as induced by one mapping.
///
/// Position `0` of the footprint tables (held separately in the
/// decomposition) corresponds to the core compute block below the innermost
/// loop — the paper's `Cp_0` extension of the C3P flow (Figure 6(e)).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoopNest {
    loops: Vec<Loop>,
}

impl LoopNest {
    /// Builds a nest from loops listed innermost first, dropping unit loops.
    pub fn new(loops: impl IntoIterator<Item = Loop>) -> Self {
        Self {
            loops: loops.into_iter().filter(|l| l.count > 1).collect(),
        }
    }

    /// The loops, innermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the nest has no (non-unit) loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Product of all trip counts (total temporal steps).
    pub fn total_steps(&self) -> u64 {
        self.loops.iter().map(|l| l.count).product()
    }

    /// Renders the nest outermost-first in the paper's `for`-style notation,
    /// e.g. for post-design reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (depth, l) in self.loops.iter().rev().enumerate() {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!("for {} in 0..{}  # {}\n", l.dim, l.count, l.level));
        }
        out
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .loops
            .iter()
            .map(|l| format!("{}:{}@{}", l.dim, l.count, l.level))
            .collect();
        write!(f, "[{}]", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nest() -> LoopNest {
        LoopNest::new([
            Loop {
                dim: Dim::Co,
                count: 4,
                level: LoopLevel::Core,
            },
            Loop {
                dim: Dim::Ho,
                count: 1,
                level: LoopLevel::Core,
            },
            Loop {
                dim: Dim::Wo,
                count: 3,
                level: LoopLevel::Chiplet,
            },
        ])
    }

    #[test]
    fn unit_loops_are_dropped() {
        let n = nest();
        assert_eq!(n.len(), 2);
        assert_eq!(n.total_steps(), 12);
    }

    #[test]
    fn render_is_outermost_first() {
        let r = nest().render();
        let first = r.lines().next().unwrap();
        assert!(first.contains("WO"), "{r}");
        assert!(r.lines().nth(1).unwrap().starts_with("  "));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(nest().to_string(), "[CO:4@core WO:3@chip]");
    }
}
