//! The Simba baseline: a weight-centric multichip dataflow model.
//!
//! Figures 12-13 of the paper compare NN-Baton's output-centric mapping
//! against a 4-chiplet Simba prototype "with the same memory and computation
//! resources", counting "the memory write/read operations coupled with the
//! die-to-die communication" (controller and RISC-V overheads omitted on
//! both sides). This crate reproduces that comparator.
//!
//! Simba's dataflow (Section III-B, Figure 4(c)-(d)):
//!
//! * spatial mapping centres on the *weight* dimensions — input channels
//!   split along PE/chiplet rows, output channels along columns;
//! * partial sums (24-bit) accumulate across rows, hopping core-to-core on
//!   the NoC and chiplet-to-chiplet on the NoP;
//! * the planar dimensions are only iterated temporally in PE-sized tiles,
//!   so halo regions reload from memory and activations cannot aggregate at
//!   the chiplet level.
//!
//! ```
//! use baton_arch::{presets, Technology};
//! use baton_model::zoo;
//!
//! let arch = presets::simba_4chiplet();
//! let tech = Technology::paper_16nm();
//! let layer = zoo::vgg16(224).layer("conv1_1").cloned().unwrap();
//! let ev = baton_simba::evaluate_simba(&layer, &arch, &tech);
//! assert!(ev.energy.total_pj() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataflow;

pub use dataflow::{
    evaluate_simba, evaluate_simba_tuned, evaluate_simba_with, SimbaEvaluation, SimbaGeometry,
};
