//! Analytical access-count model of the Simba weight-centric dataflow.

use baton_arch::{PackageConfig, Technology};
use baton_c3p::{AccessCounts, EnergyBreakdown};
use baton_model::{ConvSpec, PlanarGrid, ACT_BITS, PSUM_BITS, WGT_BITS};
use serde::{Deserialize, Serialize};

/// How the parallel units are arranged for the weight-centric mapping:
/// input channels along rows, output channels along columns, at both the
/// package (chiplet grid) and chiplet (core grid) level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimbaGeometry {
    /// Chiplet grid rows (CI ways across chiplets).
    pub chiplet_rows: u32,
    /// Chiplet grid columns (CO ways across chiplets).
    pub chiplet_cols: u32,
    /// Core grid rows per chiplet (CI ways across cores).
    pub core_rows: u32,
    /// Core grid columns per chiplet (CO ways across cores).
    pub core_cols: u32,
}

impl SimbaGeometry {
    /// The squarest grids for the machine, Simba's physical arrangement
    /// (e.g. the 36-chiplet prototype is a 6x6 mesh).
    pub fn for_arch(arch: &PackageConfig) -> Self {
        let pg = PlanarGrid::squarest(arch.chiplets);
        let cg = PlanarGrid::squarest(arch.chiplet.cores);
        Self {
            chiplet_rows: pg.rows(),
            chiplet_cols: pg.cols(),
            core_rows: cg.rows(),
            core_cols: cg.cols(),
        }
    }

    /// Total CI-parallel ways (rows across both levels).
    pub fn ci_ways(&self) -> u32 {
        self.chiplet_rows * self.core_rows
    }

    /// Total CO-parallel ways (columns across both levels).
    pub fn co_ways(&self) -> u32 {
        self.chiplet_cols * self.core_cols
    }
}

/// Evaluation outcome of the Simba baseline on one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimbaEvaluation {
    /// The unit arrangement used.
    pub geometry: SimbaGeometry,
    /// Resolved access counts (psum hop traffic folded into `d2d_bits` for
    /// inter-chiplet hops and `a_l2_bits` for intra-chiplet NoC hops).
    pub access: AccessCounts,
    /// Energy breakdown with the same Table I pricing as NN-Baton.
    pub energy: EnergyBreakdown,
    /// Runtime estimate in cycles.
    pub cycles: u64,
    /// MAC utilization.
    pub utilization: f64,
}

impl SimbaEvaluation {
    /// Energy-delay product in joule-seconds.
    pub fn edp(&self, tech: &Technology) -> f64 {
        self.energy.total_pj() * 1e-12 * tech.cycles_to_seconds(self.cycles)
    }
}

/// Evaluates one layer under the Simba weight-centric dataflow on a machine
/// with the same resources as the NN-Baton model, using the prototype's
/// fixed square grid arrangement.
pub fn evaluate_simba(
    layer: &ConvSpec,
    arch: &PackageConfig,
    tech: &Technology,
) -> SimbaEvaluation {
    evaluate_simba_with(layer, arch, tech, SimbaGeometry::for_arch(arch))
}

/// A strengthened baseline: per-layer selection of the best grid arrangement
/// (every factor-pair chiplet and core grid), in the spirit of Simba's
/// non-uniform work-partitioning study. Used to check that NN-Baton's
/// advantage is not an artifact of a weak fixed arrangement.
pub fn evaluate_simba_tuned(
    layer: &ConvSpec,
    arch: &PackageConfig,
    tech: &Technology,
) -> SimbaEvaluation {
    let mut best: Option<SimbaEvaluation> = None;
    for pg in baton_model::PlanarGrid::factor_grids(arch.chiplets) {
        for cg in baton_model::PlanarGrid::factor_grids(arch.chiplet.cores) {
            let g = SimbaGeometry {
                chiplet_rows: pg.rows(),
                chiplet_cols: pg.cols(),
                core_rows: cg.rows(),
                core_cols: cg.cols(),
            };
            let ev = evaluate_simba_with(layer, arch, tech, g);
            if best
                .as_ref()
                .map(|b| ev.energy.total_pj() < b.energy.total_pj())
                .unwrap_or(true)
            {
                best = Some(ev);
            }
        }
    }
    best.expect("factor grids are never empty")
}

/// Evaluates with an explicit grid arrangement.
pub fn evaluate_simba_with(
    layer: &ConvSpec,
    arch: &PackageConfig,
    tech: &Technology,
    g: SimbaGeometry,
) -> SimbaEvaluation {
    let core = &arch.chiplet.core;
    let (ho, wo, co) = (
        u64::from(layer.ho()),
        u64::from(layer.wo()),
        u64::from(layer.co()),
    );
    let ci = u64::from(layer.ci_per_group());
    let kernel_pts = u64::from(layer.kh()) * u64::from(layer.kw());
    let lanes = u64::from(core.lanes);
    let vector = u64::from(core.vector);
    let pixels = ho * wo;

    // --- Temporal structure --------------------------------------------------
    // Planar dims iterate temporally in PE-sized tiles: the per-core psum
    // buffer bounds the tile exactly as in the NN-Baton core.
    let tile_pixels = (core.o_l1_bytes * 8 / PSUM_BITS / lanes).max(1);
    let tile_side = (tile_pixels as f64).sqrt().floor().max(1.0) as u64;
    let (th, tw) = (tile_side.min(ho), (tile_pixels / tile_side).max(1).min(wo));
    let n_tiles = ho.div_ceil(th) * wo.div_ceil(tw);

    // Spatial channel splits.
    let ci_ways = u64::from(g.ci_ways());
    let co_ways = u64::from(g.co_ways());
    let ci_way = ci.div_ceil(ci_ways);
    let co_way = co.div_ceil(co_ways);
    // Temporal channel steps on top of the spatial split.
    let s_ci = ci_way.div_ceil(vector);
    let s_co = co_way.div_ceil(lanes);

    // --- Input activations ---------------------------------------------------
    // Every plane tile loads its halo-padded window for the CI slice of each
    // chiplet row. Weight-stationary means weights pass through once while
    // *inputs* re-stream: when a core's weight slice exceeds its W-L1 the
    // slice splits into blocks and the whole input sweep repeats per block.
    let win = |t: u64, s: u32, k: u32| (t - 1) * u64::from(s) + u64::from(k);
    let tile_window = win(th, layer.stride_h(), layer.kh()) * win(tw, layer.stride_w(), layer.kw());
    let winsum = tile_window * n_tiles;
    let input_pass_bits = winsum * ci * ACT_BITS; // one sweep of the plane
    let core_slice_bits = co_way * ci_way * kernel_pts * WGT_BITS;
    let weight_blocks = core_slice_bits
        .div_ceil((core.w_l1_bytes * 8).max(1))
        .max(1);
    // Even with one weight block, CO temporal revisits re-stream inputs when
    // the A-L2 cannot retain the tile working set.
    let tile_ws_bits = tile_window * ci.div_ceil(ci_ways) * ACT_BITS; // per chiplet row
    let co_revisit = if arch.chiplet.a_l2_bytes * 8 >= tile_ws_bits {
        1
    } else {
        s_co.max(1)
    };
    let dram_input_bits = input_pass_bits * weight_blocks * co_revisit;
    // Column-wise chiplets need the same inputs: NoP multicast crosses
    // (chiplet_cols - 1) links.
    let d2d_input_bits =
        dram_input_bits * (u64::from(g.chiplet_cols) - 1) / u64::from(g.chiplet_cols).max(1);

    // --- Weights -------------------------------------------------------------
    // Weight-stationary: the weight tensor streams through exactly once.
    let wbits = layer.weight_elems() * WGT_BITS;
    let dram_weight_bits = wbits;

    // --- Partial sums across rows -------------------------------------------
    // Each (pixel, co) output is reduced across the active CI row-ways once
    // after local accumulation; a chain of `active_rows` ways crosses
    // `active_rows - 1` core hops, of which the chiplet-row boundary hops
    // ride the NoP at 24-bit width (the Simba overhead the output-centric
    // dataflow eliminates).
    let active_rows = ci_ways.min(ci).max(1);
    // The PE accumulation buffer covers one CI-chunk pass of the local tile,
    // so each pass's partials merge downstream: one reduction-tree traversal
    // per (pixel, co, ci step).
    let reductions = pixels * co * s_ci.max(1);
    let total_hops = active_rows - 1;
    let inter_hops = if active_rows > u64::from(g.core_rows) {
        u64::from(g.chiplet_rows) - 1
    } else {
        0
    };
    let intra_hops = total_hops.saturating_sub(inter_hops);
    let psum_d2d_bits = reductions * inter_hops * PSUM_BITS;
    let psum_noc_bits = reductions * intra_hops * PSUM_BITS;

    // --- L2/L1/RF traffic ----------------------------------------------------
    // The psum NoC hops ride the chiplet-level interconnect through router
    // buffers, priced with the L2 class.
    let a_l2_fill = dram_input_bits + d2d_input_bits;
    let a_l2_read = dram_input_bits;
    // Inputs multicast along the CO columns: every column's cores fill their
    // A-L1 with the row's slice.
    let a_l1_fill = a_l2_read * co_ways;
    // One P-wide vector read per (pixel, co step, kernel point, ci chunk) in
    // every active core; idle rows (no channels) are clock-gated.
    let active_cores = active_rows * co_ways;
    let a_l1_read = pixels * s_co * kernel_pts * s_ci * vector * ACT_BITS * active_cores;
    let w_l1_fill = dram_weight_bits;
    // Weight registers refill from W-L1 per (tile, co step, ci step, kernel
    // point), broadcast within a core (same accounting as the NN-Baton core).
    let w_l1_read = n_tiles * s_co * s_ci * kernel_pts * vector * lanes * WGT_BITS * active_cores;
    // Local accumulation: every active row performs `s_ci` chunk passes, so
    // the total is macs/P RMWs -- identical per-cycle behaviour to the
    // NN-Baton core -- plus one receive-side accumulate per psum hop.
    let o_l1_rmw = pixels * co * kernel_pts * s_ci.max(1) * active_rows * PSUM_BITS
        + reductions * total_hops * PSUM_BITS;
    let out_bits = layer.output_elems() * ACT_BITS;

    let access = AccessCounts {
        dram_input_bits,
        dram_weight_bits,
        dram_output_bits: out_bits,
        d2d_bits: d2d_input_bits + psum_d2d_bits,
        a_l2_bits: a_l2_fill + a_l2_read + psum_noc_bits,
        o_l2_bits: 2 * out_bits,
        a_l1_bits: a_l1_fill + a_l1_read,
        w_l1_bits: w_l1_fill + w_l1_read,
        o_l1_rmw_bits: o_l1_rmw,
        mac_ops: layer.macs(),
    };

    // --- Energy (same Table I pricing as NN-Baton) ---------------------------
    let e = &tech.energy;
    let energy = EnergyBreakdown {
        dram_pj: e.dram_pj(access.dram_total_bits()),
        d2d_pj: e.d2d_pj(access.d2d_bits),
        l2_pj: e.sram_pj(access.a_l2_bits, arch.chiplet.a_l2_bytes)
            + e.sram_pj(access.o_l2_bits, arch.chiplet.o_l2_bytes),
        l1_pj: e.sram_pj(access.a_l1_bits, core.a_l1_bytes)
            + e.sram_pj(access.w_l1_bits, core.w_l1_bytes),
        rf_pj: e.rf_rmw_pj(access.o_l1_rmw_bits),
        mac_pj: e.mac_pj(access.mac_ops),
    };

    // --- Runtime ---------------------------------------------------------------
    let compute_cycles = pixels * s_co * kernel_pts * s_ci;
    let bw = &tech.bandwidth;
    let dram_cycles = access
        .dram_total_bits()
        .div_ceil(bw.dram_bits_per_cycle * u64::from(arch.dram_channels.max(1)));
    let d2d_cycles = if arch.chiplets > 1 {
        access
            .d2d_bits
            .div_ceil(bw.d2d_bits_per_cycle * u64::from(arch.chiplets))
    } else {
        0
    };
    let cycles = compute_cycles.max(dram_cycles).max(d2d_cycles).max(1);
    let units = arch.total_macs();
    let utilization = access.mac_ops as f64 / (cycles as f64 * units as f64);

    SimbaEvaluation {
        geometry: g,
        access,
        energy,
        cycles,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_arch::presets;
    use baton_model::zoo;

    fn setup() -> (PackageConfig, Technology) {
        (presets::simba_4chiplet(), Technology::paper_16nm())
    }

    #[test]
    fn geometry_is_square_for_the_prototype() {
        let (arch, _) = setup();
        let g = SimbaGeometry::for_arch(&arch);
        assert_eq!((g.chiplet_rows, g.chiplet_cols), (2, 2));
        assert_eq!(g.ci_ways() * g.co_ways(), arch.total_cores());
    }

    #[test]
    fn evaluation_smoke() {
        let (arch, tech) = setup();
        for (_, layer) in zoo::representative_layers(224) {
            let ev = evaluate_simba(&layer, &arch, &tech);
            assert!(ev.energy.total_pj() > 0.0, "{}", layer.name());
            assert!(ev.cycles > 0);
            assert!(ev.utilization > 0.0 && ev.utilization <= 1.0);
            assert_eq!(ev.access.mac_ops, layer.macs());
        }
    }

    #[test]
    fn psum_traffic_rides_the_package_links() {
        // The defining Simba overhead: 24-bit partial sums on the NoP.
        let (arch, tech) = setup();
        let layer = zoo::vgg16(224).layer("conv1_1").cloned().unwrap();
        let ev = evaluate_simba(&layer, &arch, &tech);
        assert!(ev.access.d2d_bits > 0);
        // Psum D2D alone exceeds what pure input multicast would need.
        let input_only = ev.access.dram_input_bits / 2;
        assert!(ev.access.d2d_bits > input_only / 4);
    }

    #[test]
    fn dram_reads_cover_unique_volumes() {
        let (arch, tech) = setup();
        let layer = zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap();
        let ev = evaluate_simba(&layer, &arch, &tech);
        assert!(ev.access.dram_input_bits >= layer.input_bits());
        assert!(ev.access.dram_weight_bits >= layer.weight_bits());
        assert_eq!(ev.access.dram_output_bits, layer.output_bits());
    }

    #[test]
    fn halo_overhead_grows_with_kernel_size() {
        // 7x7 stride-2 conv1 suffers more redundant input access than a 1x1
        // layer under the fragmented weight-centric plane tiling.
        let (arch, tech) = setup();
        let big = zoo::resnet50(512).layer("conv1").cloned().unwrap();
        let pw = zoo::resnet50(512).layer("res2a_branch2a").cloned().unwrap();
        let ev_big = evaluate_simba(&big, &arch, &tech);
        let ev_pw = evaluate_simba(&pw, &arch, &tech);
        let ratio_big = ev_big.access.dram_input_bits as f64 / big.input_bits() as f64;
        let ratio_pw = ev_pw.access.dram_input_bits as f64 / pw.input_bits() as f64;
        assert!(ratio_big > ratio_pw, "{ratio_big} vs {ratio_pw}");
    }
}

#[cfg(test)]
mod tuned_tests {
    use super::*;
    use baton_arch::presets;
    use baton_model::zoo;

    #[test]
    fn tuned_baseline_never_loses_to_the_fixed_grid() {
        let arch = presets::simba_4chiplet();
        let tech = Technology::paper_16nm();
        for (bucket, layer) in zoo::representative_layers(224) {
            let fixed = evaluate_simba(&layer, &arch, &tech);
            let tuned = evaluate_simba_tuned(&layer, &arch, &tech);
            assert!(
                tuned.energy.total_pj() <= fixed.energy.total_pj() + 1e-6,
                "{bucket}"
            );
        }
    }

    #[test]
    fn tuning_prefers_fewer_ci_rows_for_thin_inputs() {
        // conv1 layers (ci = 3) waste CI rows under the square grid; the
        // tuned arrangement flattens the CI dimension.
        let arch = presets::simba_4chiplet();
        let tech = Technology::paper_16nm();
        let conv1 = zoo::resnet50(224).layer("conv1").cloned().unwrap();
        let tuned = evaluate_simba_tuned(&conv1, &arch, &tech);
        assert!(tuned.geometry.ci_ways() <= SimbaGeometry::for_arch(&arch).ci_ways());
    }
}
