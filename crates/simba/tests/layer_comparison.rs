//! Figure 12 shape check: per-bucket NN-Baton vs Simba on the five
//! representative layers at both resolutions.

use baton_arch::{presets, Technology};
use baton_c3p::Objective;
use baton_model::zoo;
use baton_simba::evaluate_simba;

/// Saving of the best NN-Baton mapping over Simba for one layer.
fn saving(layer: &baton_model::ConvSpec) -> f64 {
    let arch = presets::simba_4chiplet();
    let tech = Technology::paper_16nm();
    let ours = baton_c3p::search_layer(layer, &arch, &tech, Objective::Energy).unwrap();
    let simba = evaluate_simba(layer, &arch, &tech);
    1.0 - ours.energy.total_pj() / simba.energy.total_pj()
}

#[test]
fn figure12_shape_significant_wins_on_activation_and_large_kernel() {
    // "We observe significant advantages of NN-Baton in the
    // activation-intensive and large kernel-size layers, especially in the
    // 512x512 resolution case."
    for res in [224, 512] {
        let layers = zoo::representative_layers(res);
        let by = |b: &str| {
            layers
                .iter()
                .find(|(bucket, _)| bucket == b)
                .map(|(_, l)| saving(l))
                .unwrap()
        };
        assert!(by("activation-intensive") > 0.25, "act @{res}");
        assert!(by("large-kernel") > 0.25, "kernel @{res}");
    }
}

#[test]
fn figure12_shape_parity_on_weight_intensive_and_common() {
    // "On the contrary, in layers with smaller feature sizes, such as the
    // weight-intensive ... layers, both perform similarly." NN-Baton should
    // neither lose badly nor win big here.
    for res in [224, 512] {
        let layers = zoo::representative_layers(res);
        for bucket in ["weight-intensive", "common"] {
            let (_, l) = layers.iter().find(|(b, _)| b == bucket).unwrap();
            let s = saving(l);
            assert!(
                (-0.10..0.30).contains(&s),
                "{bucket} @{res}: saving {:.1}%",
                100.0 * s
            );
        }
    }
}

#[test]
fn figure12_simba_d2d_is_never_lower() {
    // "Simba's die-to-die overhead is always slightly higher than ours due
    // to the massive transfer for partial sums on the package."
    let arch = presets::simba_4chiplet();
    let tech = Technology::paper_16nm();
    for (bucket, layer) in zoo::representative_layers(512) {
        let ours = baton_c3p::search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
        let simba = evaluate_simba(&layer, &arch, &tech);
        assert!(
            simba.energy.d2d_pj >= ours.energy.d2d_pj * 0.99,
            "{bucket}: simba d2d {} < ours {}",
            simba.energy.d2d_pj,
            ours.energy.d2d_pj
        );
    }
}
