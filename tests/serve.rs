//! End-to-end tests for `baton serve`: spawn the real binary on an
//! ephemeral port and speak HTTP/1.1 over raw `TcpStream`s — no client
//! library, mirroring how the scrape side (Prometheus, curl) actually
//! talks to the service.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The serve process under test; killed on drop so a failing assertion
/// never leaks a listener.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server() -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_baton"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn baton serve");
    // The first stdout line announces the bound address (port 0 resolved).
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected listen line: {line:?}"))
        .to_string();
    Server { child, addr }
}

/// One request over a fresh connection; returns (status, headers, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let split = response.find("\r\n\r\n").expect("header/body separator") + 4;
    let (head, body) = response.split_at(split);
    (status, head.to_string(), body.to_string())
}

fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _, body) = request(addr, "GET", "/readyz", "");
        if status == 200 {
            assert!(body.contains("\"status\":\"ok\""), "{body}");
            assert!(body.contains("\"uptime_seconds\":"), "{body}");
            assert!(body.contains("\"threads\":2"), "{body}");
            return;
        }
        assert_eq!(status, 503, "readyz must be 503 until warm, got {status}");
        assert!(
            Instant::now() < deadline,
            "server never became ready: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One server process, one sequential script: liveness, readiness, the
/// metrics contract, mapping requests, offline parity, and error paths.
/// (A process per case would re-pay binary startup + warmup each time.)
#[test]
fn serve_speaks_http_and_observes_itself() {
    let server = start_server();
    let addr = server.addr.as_str();

    // Liveness is immediate, readiness gates on the warmup search.
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\":\"ok\"}\n");
    wait_ready(addr);

    // The exposition: correct content type, histogram populated by the
    // warmup search before any client posted work.
    let (status, head, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "metrics content type: {head}"
    );
    assert!(metrics.contains("# TYPE baton_search_duration_seconds histogram"));
    assert!(
        metrics.contains("baton_search_duration_seconds_bucket{objective=\"energy\",le=\"+Inf\"}")
    );
    assert!(metrics.contains("# TYPE baton_http_requests_total counter"));
    assert!(metrics.contains("baton_http_requests_total{code=\"200\",path=\"/healthz\"} 1"));
    assert!(metrics.contains("baton_build_info{profile="));
    // The binary installs the counting allocator, so the ledger series
    // must be present and plausible on every scrape.
    assert!(metrics.contains("# TYPE baton_alloc_allocations_total counter"));
    assert!(metrics.contains("baton_alloc_bytes_total "));
    assert!(metrics.contains("baton_alloc_live_bytes "));
    assert!(metrics.contains("baton_alloc_peak_live_bytes "));
    let alloc_count: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("baton_alloc_allocations_total "))
        .expect("allocator series")
        .parse()
        .unwrap();
    assert!(alloc_count > 0, "a warm server has allocated");
    // The standard process panel, sampled from /proc/self on scrape.
    #[cfg(target_os = "linux")]
    {
        assert!(metrics.contains("# TYPE process_cpu_seconds_total counter"));
        assert!(metrics.contains("process_resident_memory_bytes "));
        assert!(metrics.contains("process_virtual_memory_bytes "));
        assert!(metrics.contains("process_open_fds "));
        assert!(metrics.contains("process_threads "));
    }
    // Bridged run counters: the warmup search evaluated candidates.
    let evals: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("baton_evaluations_total "))
        .expect("bridged evaluations counter")
        .parse()
        .unwrap();
    assert!(evals > 0, "warmup search left no evaluations");

    // POST /map for AlexNet (first layer keeps the search small).
    let (status, _, map_body) = request(
        addr,
        "POST",
        "/map",
        "{\"model\": \"alexnet\", \"config\": {\"layer\": 0}}",
    );
    assert_eq!(status, 200, "{map_body}");
    assert!(map_body.contains("\"record\":\"layer\""), "{map_body}");
    assert!(map_body.contains("\"layer\":\"conv1\""), "{map_body}");

    // The request observed itself: it appears in the served metrics.
    let (_, _, metrics) = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("baton_http_requests_total{code=\"200\",path=\"/map\"} 1"),
        "POST /map not counted:\n{metrics}"
    );
    assert!(metrics.contains("baton_http_request_duration_seconds_count{path=\"/map\"} 1"));

    // Parity: POST /map output is byte-identical to the offline
    // `baton explain --format json` path for the same model/config.
    let offline = Command::new(env!("CARGO_BIN_EXE_baton"))
        .args(["explain", "alexnet", "--layer", "0", "--format", "json"])
        .output()
        .expect("run baton explain");
    assert!(offline.status.success());
    assert_eq!(
        map_body,
        String::from_utf8_lossy(&offline.stdout),
        "served /map diverged from offline explain"
    );

    // /explain is the same handler; layer selection by name.
    let (status, _, explained) = request(
        addr,
        "POST",
        "/explain",
        "{\"model\": \"alexnet\", \"config\": {\"layer\": \"conv1\"}}",
    );
    assert_eq!(status, 200);
    assert!(explained.contains("\"layer\":\"conv1\""));

    // Error paths: unknown route, wrong method, malformed body, file-path
    // model, out-of-range res — all JSON, all counted under bounded path
    // labels, and none of them may take a worker thread down.
    let (status, _, body) = request(addr, "GET", "/not-a-route", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\":"));
    let (status, _, _) = request(addr, "GET", "/map", "");
    assert_eq!(status, 405);
    let (status, _, body) = request(addr, "POST", "/map", "{broken");
    assert_eq!(status, 400);
    assert!(body.contains("bad JSON body"), "{body}");
    let (status, _, body) = request(addr, "POST", "/map", "{\"model\": \"nope\"}");
    assert_eq!(status, 400);
    assert!(body.contains("unknown model"), "{body}");
    // The HTTP surface must not resolve server-side file paths (the CLI
    // does) — a path-shaped model name is just an unknown model, with no
    // filesystem detail leaked.
    let tiny = std::env::temp_dir().join("baton_serve_e2e_tiny.baton");
    std::fs::write(
        &tiny,
        "model tiny @32\nconv name=only in=32x32x8 k=3 s=1 p=1 co=16\n",
    )
    .unwrap();
    let (status, _, body) = request(
        addr,
        "POST",
        "/map",
        &format!("{{\"model\": \"{}\"}}", tiny.to_string_lossy()),
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown model"), "{body}");
    assert!(!body.contains("cannot read"), "fs detail leaked: {body}");
    // res=0 used to panic the zoo builder and kill the worker thread; now
    // it is refused up front and the server keeps answering.
    let (status, _, body) = request(
        addr,
        "POST",
        "/map",
        "{\"model\": \"alexnet\", \"config\": {\"res\": 0}}",
    );
    assert_eq!(status, 400);
    assert!(body.contains("config.res"), "{body}");
    let (status, _, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "server died after rejected requests");

    // A garbage request line never reaches routing, but still must be
    // counted (under the bounded `other` label).
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
        assert!(response.contains("malformed request line"), "{response}");
    }

    let (_, _, metrics) = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("baton_http_requests_total{code=\"404\",path=\"other\"} 1"),
        "404s must fold into the bounded `other` label:\n{metrics}"
    );
    assert!(
        metrics.contains("baton_http_requests_total{code=\"400\",path=\"/map\"} 4"),
        "rejected /map bodies not counted:\n{metrics}"
    );
    assert!(
        metrics.contains("baton_http_requests_total{code=\"400\",path=\"other\"} 1"),
        "early-exit 400s must be counted too:\n{metrics}"
    );

    // --- Request tracing and the flight recorder ------------------------

    // Every response names its trace; a fresh (uncached) mapping request
    // exercises the full phase ladder.
    let (status, head, body) = request(
        addr,
        "POST",
        "/map",
        "{\"model\": \"alexnet\", \"config\": {\"layer\": 1}}",
    );
    assert_eq!(status, 200, "{body}");
    let trace_id = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("x-baton-trace-id")
                .then(|| v.trim().to_string())
        })
        .expect("X-Baton-Trace-Id header missing");
    assert_eq!(trace_id.len(), 16, "trace id shape: {trace_id}");

    // The trace is immediately retrievable, with the server-side phases as
    // root spans and the fan-out workers' spans attached underneath.
    let (status, _, detail) = request(addr, "GET", &format!("/debug/requests/{trace_id}"), "");
    assert_eq!(status, 200, "{detail}");
    assert!(detail.contains(&format!("\"trace_id\":\"{trace_id}\"")));
    assert!(detail.contains("\"op\":\"POST /map\""), "{detail}");
    for phase in [
        "queue_wait",
        "parse",
        "cache",
        "search",
        "search_layer",
        "render",
    ] {
        assert!(
            detail.contains(&format!("\"name\":\"{phase}\"")),
            "{phase} span missing from trace:\n{detail}"
        );
    }
    assert!(
        detail.contains("\"name\":\"parallel_worker\""),
        "worker-side spans must cross the fan-out boundary:\n{detail}"
    );
    // Every span — fan-out workers included — carries its allocation
    // delta, and with the binary's counting allocator installed a real
    // search cannot have churned nothing.
    assert!(detail.contains("\"net_allocs\":"), "{detail}");
    assert!(detail.contains("\"net_bytes\":"), "{detail}");
    let net_bytes: Vec<i64> = detail
        .split("\"net_bytes\":")
        .skip(1)
        .map(|s| {
            s.split(|c: char| c != '-' && !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    assert!(
        net_bytes.iter().any(|&b| b != 0),
        "no span recorded heap movement: {detail}"
    );

    // The list view summarizes recent requests with timing breakdowns.
    let (status, _, list) = request(addr, "GET", "/debug/requests", "");
    assert_eq!(status, 200);
    assert!(list.contains(&trace_id), "{list}");
    assert!(list.contains("\"queue_wait_us\":"), "{list}");
    assert!(list.contains("\"search_us\":"), "{list}");

    // `?limit=N` polls a bounded tail; malformed limits answer 400.
    let (status, _, tail) = request(addr, "GET", "/debug/requests?limit=1", "");
    assert_eq!(status, 200);
    assert!(tail.contains("\"count\":1"), "{tail}");
    let (status, _, bad) = request(addr, "GET", "/debug/requests?limit=0", "");
    assert_eq!(status, 400, "{bad}");
    let (status, _, bad) = request(addr, "GET", "/debug/requests?limit=snow", "");
    assert_eq!(status, 400, "{bad}");

    // The same trace renders as a Perfetto-loadable trace_event file.
    let (status, _, perfetto) = request(
        addr,
        "GET",
        &format!("/debug/requests/{trace_id}?format=perfetto"),
        "",
    );
    assert_eq!(status, 200);
    assert!(perfetto.contains("\"traceEvents\""), "{perfetto}");
    assert!(perfetto.contains("parallel_worker"), "{perfetto}");

    // Unknown trace IDs are a 404, not a crash or an empty 200.
    let (status, _, body) = request(addr, "GET", "/debug/requests/0000000000000000", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\":"), "{body}");
}
