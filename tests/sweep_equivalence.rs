//! Differential property test: the streaming struct-of-arrays sweep engine
//! is bit-identical to the materialized reference path.
//!
//! [`full_sweep`] re-prices every design point through pooled
//! [`baton_c3p::SweepLanes`] rung lanes; [`full_sweep_reference`] is the
//! retained ground truth — per-candidate `LayerProfiles` re-resolved at
//! every grid cell. For random models, geometry subsets, memory ladders,
//! and pruning budgets, at 1 and 4 worker threads, the two must agree on
//! everything observable: the `DesignPoint` vectors (exact `f64`/`u64`
//! equality), the rendered CSV bytes, the audit record streams (`unit`,
//! `point`, `summary` — wall clocks aside), and the telemetry counter
//! deltas including `sweep_points`.

use baton_arch::Technology;
use baton_dse::audit::{AuditRecord, SweepAudit};
use baton_dse::csv::design_points_csv;
use baton_dse::{full_sweep_audited, full_sweep_reference_audited, SweepOptions};
use baton_model::{ConvSpec, Model};
use baton_telemetry::{counters, Counter};
use proptest::prelude::*;
use std::sync::Mutex;

/// Counters are process-global while a telemetry session is attached, so
/// every test in this binary serializes on one lock (poison-tolerant: an
/// assert failure in one test must not mask the others).
static TELEMETRY: Mutex<()> = Mutex::new(());

/// Fixed geometry tuples `(N_P, N_C, L, P)` with their MAC budgets — a
/// spread over chiplet counts and lane/vector splits. Restricting the
/// compute space to one tuple keeps each sweep at a handful of units.
const GEOMETRIES: [(u32, u32, u32, u32); 5] = [
    (4, 8, 8, 8),
    (2, 4, 8, 8),
    (1, 8, 16, 4),
    (4, 4, 4, 4),
    (2, 8, 8, 16),
];

/// Memory-ladder variants: full-ish, skewed small, and single-rung.
const A_L1_LADDERS: [&[u64]; 3] = [&[1024, 4 * 1024, 32 * 1024], &[800, 2048], &[8 * 1024]];
const W_L1_LADDERS: [&[u64]; 2] = [&[18 * 1024], &[4 * 1024, 144 * 1024]];
const A_L2_LADDERS: [&[u64]; 2] = [&[64 * 1024, 256 * 1024], &[32 * 1024, 128 * 1024]];
const O_L1_LADDERS: [&[u64]; 2] = [&[144], &[48, 144]];

/// Bounded random conv layers (same envelope as the batch-equivalence
/// harness): shapes that cross the lane/vector boundaries of the swept
/// machines, invalid kernel/pad combinations filtered by `ConvSpec::new`.
fn layers() -> impl Strategy<Value = ConvSpec> {
    (
        7u32..=40,  // hi == wi
        1u32..=96,  // ci
        0usize..3,  // kernel index -> {1, 3, 5}
        1u32..=2,   // stride
        0u32..=2,   // pad
        1u32..=128, // co
    )
        .prop_filter_map("valid conv shape", |(hw, ci, ki, stride, pad, co)| {
            let k = [1u32, 3, 5][ki];
            ConvSpec::new("prop", hw, hw, ci, k, stride, pad, co).ok()
        })
}

/// 1-2 random layers assembled into a model.
fn models() -> impl Strategy<Value = Model> {
    proptest::collection::vec(layers(), 1..3).prop_map(|ls| {
        let named: Vec<ConvSpec> = ls
            .into_iter()
            .enumerate()
            .map(|(i, l)| l.renamed(format!("conv{i}")))
            .collect();
        Model::new("prop-model", 64, named)
    })
}

/// Sweep options for one drawn case: a single-geometry compute space and a
/// small memory grid.
fn case_opts(geo: usize, a1: usize, w1: usize, a2: usize, o1: usize, keep: usize) -> SweepOptions {
    let (np, nc, l, p) = GEOMETRIES[geo];
    let mut opts = SweepOptions {
        total_macs: u64::from(np) * u64::from(nc) * u64::from(l) * u64::from(p),
        keep_per_corner: keep,
        ..SweepOptions::default()
    };
    opts.space.compute.chiplets = vec![np];
    opts.space.compute.cores = vec![nc];
    opts.space.compute.lanes = vec![l];
    opts.space.compute.vector = vec![p];
    opts.space.memory.a_l1 = A_L1_LADDERS[a1].to_vec();
    opts.space.memory.w_l1 = W_L1_LADDERS[w1].to_vec();
    opts.space.memory.a_l2 = A_L2_LADDERS[a2].to_vec();
    opts.space.memory.o_l1 = O_L1_LADDERS[o1].to_vec();
    opts
}

/// Audit stream with wall clocks stripped — everything else must be
/// byte-identical between engines and across thread counts.
fn strip_walls(audit: &SweepAudit) -> Vec<String> {
    audit
        .recent()
        .iter()
        .map(|r| {
            let mut line = r.to_json();
            if let Some(i) = line.find(",\"wall_us\"") {
                line.truncate(i);
            }
            line
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn streaming_sweep_is_bit_identical_to_the_reference(
        model in models(),
        geo in 0usize..GEOMETRIES.len(),
        a1 in 0usize..A_L1_LADDERS.len(),
        w1 in 0usize..W_L1_LADDERS.len(),
        a2 in 0usize..A_L2_LADDERS.len(),
        o1 in 0usize..O_L1_LADDERS.len(),
        keep in 1usize..=3,
    ) {
        let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        let tech = Technology::paper_16nm();
        let opts = case_opts(geo, a1, w1, a2, o1, keep);

        let ref_audit = SweepAudit::in_memory();
        let want = full_sweep_reference_audited(&model, &tech, &opts, &ref_audit);
        let want_csv = design_points_csv(&want, &tech);
        let want_stream = strip_walls(&ref_audit);

        for threads in [1usize, 4] {
            baton_parallel::configure_threads(Some(threads));
            let audit = SweepAudit::in_memory();
            let got = full_sweep_audited(&model, &tech, &opts, &audit);
            baton_parallel::configure_threads(None);
            prop_assert_eq!(&want, &got, "points diverge at threads={}", threads);
            prop_assert_eq!(
                &want_csv,
                &design_points_csv(&got, &tech),
                "CSV bytes diverge at threads={}",
                threads
            );
            prop_assert_eq!(
                &want_stream,
                &strip_walls(&audit),
                "audit streams diverge at threads={}",
                threads
            );
        }
    }
}

/// With a telemetry session attached, the full counter delta of a sweep —
/// `sweep_points`, the infeasible tally, decompose/reject replay, shape
/// memo hits/misses, and the C3P penalty activations — must be identical
/// between the streaming and reference engines, at 1 and 4 threads.
#[test]
fn counter_deltas_match_between_engines_and_thread_counts() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let tech = Technology::paper_16nm();
    let model = Model::new(
        "counter-model",
        64,
        vec![
            ConvSpec::new("c0", 28, 28, 32, 3, 1, 1, 64).unwrap(),
            ConvSpec::new("c1", 14, 14, 64, 1, 1, 0, 96).unwrap(),
        ],
    );
    let opts = case_opts(0, 0, 1, 0, 1, 2);
    let _session = baton_telemetry::attach_with_sink(&Default::default(), None);

    let watched = [
        Counter::SweepPoints,
        Counter::SweepPointsInfeasible,
        Counter::SweepGeometries,
        Counter::DecomposeCalls,
        Counter::CandidatesGenerated,
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::PenaltyAL1,
        Counter::PenaltyAL2,
        Counter::PenaltyWL1,
    ];
    let run = |reference: bool, threads: usize| -> Vec<(&'static str, u64)> {
        baton_parallel::configure_threads(Some(threads));
        let before = counters::snapshot();
        let points = if reference {
            full_sweep_reference_audited(&model, &tech, &opts, &SweepAudit::disabled())
        } else {
            full_sweep_audited(&model, &tech, &opts, &SweepAudit::disabled())
        };
        let delta = counters::snapshot().since(&before);
        baton_parallel::configure_threads(None);
        assert_eq!(
            delta.get(Counter::SweepPoints),
            points.len() as u64,
            "sweep_points must count the returned vector (reference={reference})"
        );
        watched.iter().map(|&c| (c.name(), delta.get(c))).collect()
    };

    let want = run(true, 1);
    assert!(
        want.iter().any(|&(n, v)| n == "sweep_points" && v > 0),
        "fixture must produce points: {want:?}"
    );
    for threads in [1usize, 4] {
        assert_eq!(want, run(true, threads), "reference@{threads}");
        assert_eq!(want, run(false, threads), "streaming@{threads}");
    }
}

/// The audit `unit` records of both engines agree field-by-field on the
/// exploration tallies (candidates, kept, memo hits/misses, skip and
/// infeasible splits) — a sharper check than stream equality alone, since
/// it pins where a divergence would live.
#[test]
fn unit_tallies_agree_between_engines() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let tech = Technology::paper_16nm();
    let model = Model::new(
        "tally-model",
        64,
        vec![
            ConvSpec::new("c0", 28, 28, 32, 3, 1, 1, 64).unwrap(),
            // Repeated shape: must be a memo hit for both engines.
            ConvSpec::new("c0b", 28, 28, 32, 3, 1, 1, 64).unwrap(),
        ],
    );
    let opts = case_opts(1, 0, 0, 0, 0, 3);
    let units = |audit: &SweepAudit| -> Vec<(u64, u64, u64, u64, u64, u64, bool)> {
        audit
            .recent()
            .iter()
            .filter_map(|r| match r {
                AuditRecord::Unit {
                    points,
                    infeasible,
                    skipped,
                    memo_hits,
                    memo_misses,
                    candidates,
                    feasible,
                    ..
                } => Some((
                    *points,
                    *infeasible,
                    *skipped,
                    *memo_hits,
                    *memo_misses,
                    *candidates,
                    *feasible,
                )),
                _ => None,
            })
            .collect()
    };
    let fast = SweepAudit::in_memory();
    full_sweep_audited(&model, &tech, &opts, &fast);
    let slow = SweepAudit::in_memory();
    full_sweep_reference_audited(&model, &tech, &opts, &slow);
    let got = units(&fast);
    assert!(!got.is_empty());
    assert_eq!(got, units(&slow));
    // The repeated shape memoized: some unit saw a hit.
    assert!(
        got.iter().any(|u| u.3 > 0),
        "repeated layer shape should hit the shape memo: {got:?}"
    );
}
