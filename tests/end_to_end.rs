//! Cross-crate integration tests: the complete NN-Baton pipelines from the
//! model zoo / parser through mapping, C3P evaluation, simulation and the
//! design flows.

use nn_baton::arch::presets::ProportionalBuffers;
use nn_baton::prelude::*;

fn setup() -> (PackageConfig, Technology) {
    (presets::case_study_accelerator(), Technology::paper_16nm())
}

#[test]
fn parse_map_simulate_pipeline() {
    // Text description -> model -> post-design flow -> DES, end to end.
    let text = "\
model pipeline-test @128
conv      name=c1 in=128x128x3  k=3 s=2 p=1 co=32
conv      name=c2 in=64x64x32   k=3 s=1 p=1 co=64
pointwise name=c3 in=64x64x64   co=32
fc        name=fc ci=512 co=10
";
    let model = parse_model(text).expect("valid description");
    let (arch, tech) = setup();
    let report = map_model(&model, &arch, &tech).expect("model maps");
    assert_eq!(report.layers.len(), 4);
    for l in &report.layers {
        let layer = model.layer(&l.layer).unwrap();
        let sim = simulate(layer, &arch, &tech, &l.evaluation.mapping).expect("legal mapping");
        assert!(sim.total_cycles > 0);
    }
}

#[test]
fn every_zoo_model_maps_on_the_case_study_machine() {
    let (arch, tech) = setup();
    for model in [
        zoo::alexnet(224),
        zoo::vgg16(224),
        zoo::resnet50(224),
        zoo::darknet19(224),
        zoo::mobilenet_v2(224),
    ] {
        let report =
            map_model(&model, &arch, &tech).unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        assert_eq!(report.layers.len(), model.layers().len());
        assert!(report.energy.total_pj() > 0.0);
        // Energy per MAC stays within a sane envelope above the raw MAC
        // cost. Memory can dominate by orders of magnitude: batch-1 FC
        // layers are weight-DRAM bound and depthwise layers read a full
        // P-wide vector per useful channel, so MobileNetV2 lands near
        // 7 pJ/MAC on this dense-vector machine.
        let per_mac = report.energy.total_pj() / model.total_macs() as f64;
        assert!(
            (0.024..10.0).contains(&per_mac),
            "{}: {per_mac} pJ/MAC",
            model.name()
        );
    }
}

#[test]
fn post_design_flow_is_deterministic() {
    let (arch, tech) = setup();
    let model = zoo::darknet19(224);
    let a = map_model(&model, &arch, &tech).unwrap();
    let b = map_model(&model, &arch, &tech).unwrap();
    assert_eq!(a, b);
}

#[test]
fn granularity_and_dse_flows_agree_on_the_winner_region() {
    // The Figure 14 flow (proportional buffers) and the Figure 15 flow
    // (free memory allocation) must both conclude that multi-chiplet
    // designs dominate under a tight area budget.
    let tech = Technology::paper_16nm();
    let model = nn_baton::model::Model::new(
        "resnet-slice",
        224,
        vec![
            zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap(),
            zoo::resnet50(224).layer("res4a_branch2a").cloned().unwrap(),
        ],
    );
    let gran = granularity_sweep(
        &model,
        &tech,
        2048,
        &ProportionalBuffers::default(),
        Some(2.0),
    );
    assert!(gran
        .iter()
        .filter(|r| r.geometry.0 == 1)
        .all(|r| !r.meets_area));
    assert!(gran.iter().any(|r| r.geometry.0 == 4 && r.meets_area));

    let mut opts = SweepOptions {
        total_macs: 2048,
        ..SweepOptions::default()
    };
    opts.space.memory.o_l1 = vec![144];
    opts.space.memory.a_l1 = vec![1024, 8 * 1024];
    opts.space.memory.w_l1 = vec![18 * 1024, 72 * 1024];
    opts.space.memory.a_l2 = vec![64 * 1024];
    let points = full_sweep(&model, &tech, &opts);
    let best = points
        .iter()
        .filter(|p| p.chiplet_area_mm2 <= 2.0)
        .min_by(|a, b| a.edp(&tech).total_cmp(&b.edp(&tech)))
        .expect("some design fits 2 mm^2");
    assert!(best.geometry.0 >= 2, "winner {:?}", best.geometry);
}

#[test]
fn objectives_trade_off_consistently_model_level() {
    use nn_baton::dse::postdesign::map_model_with;
    let (arch, tech) = setup();
    let model = zoo::alexnet(224);
    let e = map_model_with(&model, &arch, &tech, Objective::Energy).unwrap();
    let r = map_model_with(&model, &arch, &tech, Objective::Runtime).unwrap();
    assert!(e.energy.total_pj() <= r.energy.total_pj() + 1.0);
    assert!(r.cycles <= e.cycles);
}

#[test]
fn mobilenet_depthwise_layers_map_and_simulate() {
    let (arch, tech) = setup();
    let model = zoo::mobilenet_v2(224);
    let dw = model.layer("block4_dwise").unwrap();
    let best = search_layer(dw, &arch, &tech, Objective::Energy).unwrap();
    // Depthwise layers disable input rotation (nothing is shared).
    assert_eq!(best.access.d2d_bits, 0);
    let sim = simulate(dw, &arch, &tech, &best.mapping).unwrap();
    assert!(sim.total_cycles > 0);
}

#[test]
fn energy_breakdown_reconstructs_from_access_counts() {
    // The priced breakdown must be reproducible from the access counts and
    // the public energy model: no hidden terms.
    let (arch, tech) = setup();
    let layer = zoo::vgg16(224).layer("conv4_2").cloned().unwrap();
    let ev = search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
    let e = &tech.energy;
    let a = &ev.access;
    let dram = e.dram_pj(a.dram_total_bits());
    assert!((dram - ev.energy.dram_pj).abs() < 1e-6);
    let rf = e.rf_rmw_pj(a.o_l1_rmw_bits);
    assert!((rf - ev.energy.rf_pj).abs() < 1e-6);
    let mac = e.mac_pj(a.mac_ops);
    assert!((mac - ev.energy.mac_pj).abs() < 1e-6);
}
