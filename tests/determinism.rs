//! Cross-cutting determinism: every flow is a pure function of its inputs.
//!
//! The DSE results feed publication tables, so run-to-run wobble would be a
//! correctness bug. These tests run each flow twice and require identical
//! output, including orderings.

use nn_baton::arch::presets::ProportionalBuffers;
use nn_baton::mapping::enumerate;
use nn_baton::prelude::*;

#[test]
fn candidate_enumeration_is_stable() {
    let arch = presets::case_study_accelerator();
    let layer = zoo::resnet50(224).layer("res3a_branch2b").cloned().unwrap();
    let a = enumerate::candidates(&layer, &arch);
    let b = enumerate::candidates(&layer, &arch);
    assert_eq!(a, b);
    // Sorted by the numeric key: stable under re-sorting.
    let mut c = a.clone();
    c.reverse();
    let c2 = enumerate::candidates(&layer, &arch);
    assert_ne!(c, c2);
}

#[test]
fn search_and_simulation_are_deterministic() {
    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    let layer = zoo::darknet19(224).layer("conv9").cloned().unwrap();
    let e1 = search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
    let e2 = search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
    assert_eq!(e1, e2);
    let s1 = simulate(&layer, &arch, &tech, &e1.mapping).unwrap();
    let s2 = simulate(&layer, &arch, &tech, &e2.mapping).unwrap();
    assert_eq!(s1, s2);
}

#[test]
fn granularity_sweep_is_deterministic() {
    let tech = Technology::paper_16nm();
    let model = Model::new(
        "slice",
        224,
        vec![zoo::resnet50(224).layer("res2a_branch2b").cloned().unwrap()],
    );
    let a = granularity_sweep(
        &model,
        &tech,
        2048,
        &ProportionalBuffers::default(),
        Some(2.0),
    );
    let b = granularity_sweep(
        &model,
        &tech,
        2048,
        &ProportionalBuffers::default(),
        Some(2.0),
    );
    assert_eq!(a, b);
    // Sorted by geometry tuple.
    let mut geos: Vec<_> = a.iter().map(|r| r.geometry).collect();
    let sorted = {
        let mut s = geos.clone();
        s.sort_unstable();
        s
    };
    geos.sort_unstable();
    assert_eq!(geos, sorted);
}

#[test]
fn full_sweep_is_deterministic() {
    let tech = Technology::paper_16nm();
    let model = Model::new(
        "slice",
        224,
        vec![zoo::darknet19(224).layer("conv9").cloned().unwrap()],
    );
    let mut opts = SweepOptions {
        total_macs: 2048,
        ..SweepOptions::default()
    };
    opts.space.memory.o_l1 = vec![144];
    opts.space.memory.a_l1 = vec![1024, 8192];
    opts.space.memory.w_l1 = vec![18 * 1024];
    opts.space.memory.a_l2 = vec![64 * 1024];
    let a = full_sweep(&model, &tech, &opts);
    let b = full_sweep(&model, &tech, &opts);
    assert_eq!(a, b);
}

#[test]
fn functional_execution_is_deterministic() {
    let arch = presets::case_study_accelerator();
    let layer = ConvSpec::new("d", 16, 16, 6, 3, 1, 1, 12).unwrap();
    let input = Tensor3::counting(16, 16, 6);
    let weights = Tensor4::counting(3, 3, 6, 12);
    let m = enumerate::candidates(&layer, &arch)
        .into_iter()
        .find(|m| nn_baton::mapping::decompose(&layer, &arch, m).is_ok())
        .unwrap();
    let a = run_mapping(&layer, &arch, &m, &input, &weights, 5).unwrap();
    let b = run_mapping(&layer, &arch, &m, &input, &weights, 5).unwrap();
    assert_eq!(a, b);
}
