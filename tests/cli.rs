//! End-to-end tests of the `baton` command-line tool.

use std::process::Command;

fn baton(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_baton"))
        .args(args)
        .output()
        .expect("baton binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_subcommands() {
    let (ok, stdout, _) = baton(&["help"]);
    assert!(ok);
    for cmd in [
        "stats",
        "map",
        "compare",
        "explore",
        "sweep",
        "recommend",
        "serve",
        "check",
    ] {
        assert!(stdout.contains(cmd), "help lacks `{cmd}`: {stdout}");
    }
}

#[test]
fn stats_prints_the_model_table() {
    let (ok, stdout, _) = baton(&["stats", "darknet19", "--res", "224"]);
    assert!(ok);
    assert!(stdout.contains("darknet19: 19 layers"));
    assert!(stdout.contains("conv19"));
}

#[test]
fn map_emits_csv_artifacts() {
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("alexnet.csv");
    let (ok, stdout, stderr) = baton(&["map", "alexnet", "--csv", csv.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("alexnet"));
    let content = std::fs::read_to_string(&csv).unwrap();
    assert!(content.starts_with("layer,"));
    // Header + 8 layers.
    assert_eq!(content.lines().count(), 9);
}

#[test]
fn check_validates_and_rejects_model_files() {
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.baton");
    std::fs::write(
        &good,
        "model demo @64\nconv name=c in=64x64x3 k=3 s=1 p=1 co=8\n",
    )
    .unwrap();
    let (ok, stdout, _) = baton(&["check", good.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("ok: demo"));

    let bad = dir.join("bad.baton");
    std::fs::write(&bad, "model demo @64\nconv name=c in=64x64 k=3 co=8\n").unwrap();
    let (ok, _, stderr) = baton(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn unknown_inputs_fail_cleanly() {
    // The offending word must be named even when no model argument follows.
    let (ok, _, stderr) = baton(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("frobnicate"), "{stderr}");
    let (ok, _, stderr) = baton(&["frobnicate", "vgg16"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown subcommand `frobnicate`"),
        "{stderr}"
    );
    let (ok, _, stderr) = baton(&["map", "not-a-model"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
}

#[test]
fn version_exits_zero_in_all_spellings() {
    for arg in ["version", "--version", "-V"] {
        let (ok, stdout, stderr) = baton(&[arg]);
        assert!(ok, "`baton {arg}` failed: {stderr}");
        assert!(stdout.starts_with("baton "), "{stdout}");
    }
}

#[test]
fn profile_prints_the_per_layer_breakdown() {
    let (ok, stdout, stderr) = baton(&["profile", "alexnet"]);
    assert!(ok, "{stderr}");
    for token in [
        "layer",
        "enumerated",
        "rej shape",
        "rej buffer",
        "evaluations",
    ] {
        assert!(stdout.contains(token), "missing `{token}` in: {stdout}");
    }
    assert!(stdout.contains("conv1"), "{stdout}");
    // The session summary follows the table.
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("phase timings:"), "{stdout}");
    assert!(stdout.contains("search_layer"), "{stdout}");
}

#[test]
fn trace_json_emits_parseable_phase_events() {
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("map.jsonl");
    let (ok, _, stderr) = baton(&["map", "alexnet", "--trace-json", trace.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    let content = std::fs::read_to_string(&trace).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    for line in content.lines() {
        let obj = nn_baton::telemetry::json::parse_flat_object(line)
            .unwrap_or_else(|e| panic!("bad trace line `{line}`: {e}"));
        assert!(obj.contains_key("ts_us"), "{line}");
        kinds.insert(obj["event"].as_str().unwrap().to_string());
    }
    for kind in [
        "session_start",
        "span",
        "search_layer",
        "map_layer",
        "session_end",
    ] {
        assert!(kinds.contains(kind), "no `{kind}` event in {kinds:?}");
    }
    // Spans carry phases; at least the per-layer search phase must appear.
    assert!(content.contains("\"phase\":\"search_layer\""), "{content}");
}

/// Writes the 1-layer model used by the sweep-audit tests and returns its
/// path; tiny enough that a full (if shrunken-MAC) sweep runs in seconds.
fn tiny_model_file(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(name);
    std::fs::write(
        &file,
        "model tiny @32\nconv name=c in=32x32x8 k=3 s=1 p=1 co=16\n",
    )
    .unwrap();
    file
}

#[test]
fn sweep_audit_reconciles_with_csv_and_telemetry_counters() {
    // The acceptance contract: audit `point` records == points evaluated
    // (the telemetry sweep_points counter) == CSV data rows.
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = tiny_model_file("sweep-audit.baton");
    let audit = dir.join("sweep-audit.jsonl");
    let csv = dir.join("sweep-audit.csv");
    let trace = dir.join("sweep-audit-trace.jsonl");
    let (ok, stdout, stderr) = baton(&[
        "sweep",
        model.to_str().unwrap(),
        "--macs",
        "512",
        "--audit",
        audit.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("audit records"), "{stdout}");

    // Every audit line is valid flat JSON; count the point records and pull
    // the summary.
    let mut points = 0u64;
    let mut summary_points = None;
    for line in std::fs::read_to_string(&audit).unwrap().lines() {
        let obj = nn_baton::telemetry::json::parse_flat_object(line)
            .unwrap_or_else(|e| panic!("bad audit line `{line}`: {e}"));
        match obj["record"].as_str().unwrap() {
            "point" => points += 1,
            "summary" => summary_points = obj["points"].as_f64(),
            _ => {}
        }
    }
    assert!(points > 0);
    assert_eq!(summary_points, Some(points as f64));

    // CSV data rows match exactly.
    let csv_rows = std::fs::read_to_string(&csv).unwrap().lines().count() - 1;
    assert_eq!(csv_rows as u64, points);

    // And the session's sweep_points counter (carried by the session_end
    // trace event) agrees: written == evaluated.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let end = trace_text
        .lines()
        .find(|l| l.contains("\"event\":\"session_end\""))
        .expect("session_end event");
    let obj = nn_baton::telemetry::json::parse_flat_object(end).unwrap();
    assert_eq!(obj["sweep_points"].as_f64(), Some(points as f64));
}

#[test]
fn sweep_explain_renders_the_pareto_provenance() {
    let model = tiny_model_file("sweep-explain.baton");
    let (ok, stdout, stderr) = baton(&[
        "sweep",
        model.to_str().unwrap(),
        "--macs",
        "512",
        "--explain",
        "--format",
        "json",
        "--top",
        "2",
    ]);
    assert!(ok, "{stderr}");
    let mut kinds = std::collections::BTreeMap::new();
    for line in stdout.lines().filter(|l| l.starts_with('{')) {
        let obj = nn_baton::telemetry::json::parse_flat_object(line)
            .unwrap_or_else(|e| panic!("bad explain line `{line}`: {e}"));
        *kinds
            .entry(obj["record"].as_str().unwrap().to_string())
            .or_insert(0u64) += 1;
    }
    assert_eq!(kinds.get("sweep"), Some(&1));
    assert!(
        kinds.get("front_member").copied().unwrap_or(0) > 0,
        "{kinds:?}"
    );
    assert!(
        kinds.get("eliminated").copied().unwrap_or(0) <= 2,
        "{kinds:?}"
    );

    // Text format mentions the front and the nearest misses.
    let (ok, stdout, stderr) = baton(&[
        "sweep",
        model.to_str().unwrap(),
        "--macs",
        "512",
        "--explain",
        "--top",
        "2",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Pareto front"), "{stdout}");
    assert!(stdout.contains("nearest misses"), "{stdout}");
}

#[test]
fn sweep_explain_and_audit_combine_in_one_invocation() {
    // `--explain` renders from the returned points while `--audit` streams
    // per-point records as the sweep runs — one invocation must serve both
    // consumers consistently: the provenance's point total is the audit's
    // point-record count.
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = tiny_model_file("sweep-explain-audit.baton");
    let audit = dir.join("sweep-explain-audit.jsonl");
    let (ok, stdout, stderr) = baton(&[
        "sweep",
        model.to_str().unwrap(),
        "--macs",
        "512",
        "--explain",
        "--top",
        "2",
        "--audit",
        audit.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("audit records"), "{stdout}");
    assert!(stdout.contains("Pareto front"), "{stdout}");

    let mut audit_points = 0u64;
    for line in std::fs::read_to_string(&audit).unwrap().lines() {
        let obj = nn_baton::telemetry::json::parse_flat_object(line)
            .unwrap_or_else(|e| panic!("bad audit line `{line}`: {e}"));
        if obj["record"].as_str() == Some("point") {
            audit_points += 1;
        }
    }
    assert!(audit_points > 0);
    // "sweep: N valid points, ..." from the explain header agrees with the
    // audit stream.
    let header = stdout
        .lines()
        .find(|l| l.starts_with("sweep: "))
        .expect("explain header");
    let n: u64 = header
        .strip_prefix("sweep: ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("unparseable header `{header}`"));
    assert_eq!(n, audit_points, "{stdout}");
}

#[test]
fn fidelity_snapshots_and_gates() {
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("fidelity.json");
    let (ok, stdout, stderr) = baton(&["fidelity", "alexnet", "--out", out.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("fidelity alexnet:"), "{stdout}");
    let text = std::fs::read_to_string(&out).unwrap();
    let snap = nn_baton::report::BenchSnapshot::parse(&text).expect("snapshot parses");
    assert_eq!(snap.nums.get("fidelity.models"), Some(&1.0));
    assert!(snap.nums.contains_key("fidelity.alexnet.conv1.rel_err"));
    assert!(snap.nums.contains_key("fidelity.max_abs_rel_err"));

    // An impossible bound in the baseline must fail the run; a generous one
    // must pass.
    let tight = dir.join("fidelity-tight.json");
    std::fs::write(
        &tight,
        "{\n  \"gate.max.fidelity.max_abs_rel_err\": 0.0001\n}\n",
    )
    .unwrap();
    let (ok, _, stderr) = baton(&["fidelity", "alexnet", "--baseline", tight.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("fidelity"), "{stderr}");

    let loose = dir.join("fidelity-loose.json");
    std::fs::write(
        &loose,
        "{\n  \"gate.max.fidelity.max_abs_rel_err\": 2.0\n}\n",
    )
    .unwrap();
    let (ok, stdout, stderr) =
        baton(&["fidelity", "alexnet", "--baseline", loose.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn map_honors_the_divergence_tolerance_flag() {
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("divergence.json");
    let (ok, stdout, stderr) = baton(&[
        "map",
        "alexnet",
        "--trace-perfetto",
        trace.to_str().unwrap(),
        "--divergence-tol",
        "0.05",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("divergences > 5%"), "{stdout}");
    let (ok, _, stderr) = baton(&["map", "alexnet", "--divergence-tol", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("--divergence-tol"), "{stderr}");
}

#[test]
fn custom_model_file_maps_end_to_end() {
    let dir = std::env::temp_dir().join("baton-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("pipeline.baton");
    std::fs::write(
        &file,
        "model pipe @96\n\
         conv name=a in=96x96x3 k=3 s=2 p=1 co=16\n\
         pointwise name=b in=48x48x16 co=32\n\
         fc name=c ci=512 co=10\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = baton(&["map", file.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("pipe: 3 layers"));
}
