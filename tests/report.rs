//! End-to-end tests of the `baton-report` surfaces through the CLI:
//! `explain`, `--trace-perfetto`, `bench`, and `profile --json`.

use std::path::PathBuf;
use std::process::Command;

use nn_baton::report::perfetto;
use nn_baton::report::BenchSnapshot;
use nn_baton::telemetry::json::parse_flat_object;

fn baton(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_baton"))
        .args(args)
        .output()
        .expect("baton binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A one-layer model small enough that every test re-search stays fast.
fn tiny_model() -> PathBuf {
    let dir = std::env::temp_dir().join("baton-report-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("tiny.baton");
    std::fs::write(
        &file,
        "model tiny @32\nconv name=only in=32x32x8 k=3 s=1 p=1 co=16\n",
    )
    .unwrap();
    file
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("baton-report-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn explain_prints_every_section_on_the_tiny_model() {
    let model = tiny_model();
    let (ok, stdout, stderr) = baton(&["explain", model.to_str().unwrap(), "--layer", "0"]);
    assert!(ok, "{stderr}");
    // The golden skeleton: every section and every C³P buffer, by name.
    for section in [
        "layer only",
        "winner:",
        "loop nest",
        "C3P buffer verdicts",
        "access counts",
        "energy split",
        "runner-up mappings",
    ] {
        assert!(stdout.contains(section), "missing `{section}` in: {stdout}");
    }
    for buffer in ["A-L2", "A-L1", "W-L1 pool"] {
        assert!(stdout.contains(buffer), "missing `{buffer}` in: {stdout}");
    }
    for row in ["dram_input", "d2d_ring", "mac_ops", "Cc_1"] {
        assert!(stdout.contains(row), "missing `{row}` in: {stdout}");
    }
    // Selecting by name prints the same layer.
    let (ok, by_name, _) = baton(&["explain", model.to_str().unwrap(), "--layer", "only"]);
    assert!(ok);
    assert_eq!(stdout, by_name);

    // Markdown mode produces headings and tables.
    let (ok, md, _) = baton(&[
        "explain",
        model.to_str().unwrap(),
        "--layer",
        "0",
        "--format",
        "md",
    ]);
    assert!(ok);
    assert!(md.contains("## "), "{md}");
    assert!(md.contains("| buffer |") || md.contains("|---"), "{md}");
}

#[test]
fn explain_json_round_trips_through_the_flat_parser() {
    let model = tiny_model();
    let (ok, stdout, stderr) = baton(&[
        "explain",
        model.to_str().unwrap(),
        "--layer",
        "0",
        "--format",
        "json",
    ]);
    assert!(ok, "{stderr}");
    let mut kinds = std::collections::BTreeSet::new();
    for line in stdout.lines() {
        let obj = parse_flat_object(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        kinds.insert(obj["record"].as_str().unwrap().to_string());
    }
    for kind in [
        "layer",
        "loop",
        "buffer",
        "breakpoint",
        "access",
        "energy",
        "runner_up",
    ] {
        assert!(kinds.contains(kind), "no `{kind}` record in {kinds:?}");
    }
}

#[test]
fn explain_rejects_out_of_range_layers() {
    let model = tiny_model();
    let (ok, _, stderr) = baton(&["explain", model.to_str().unwrap(), "--layer", "7"]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
    let (ok, _, stderr) = baton(&["explain", model.to_str().unwrap(), "--layer", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("no layer `nope`"), "{stderr}");
}

#[test]
fn perfetto_export_is_valid_chrome_trace_json() {
    let model = tiny_model();
    let out = tmp("tiny-perfetto.json");
    let (ok, stdout, stderr) = baton(&[
        "map",
        model.to_str().unwrap(),
        "--trace-perfetto",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote"), "{stdout}");
    let text = std::fs::read_to_string(&out).unwrap();
    // Raw spot-checks of the trace_event contract...
    for token in [
        "\"ph\":\"X\"",
        "\"pid\":",
        "\"tid\":",
        "\"ts\":",
        "traceEvents",
    ] {
        assert!(text.contains(token), "missing `{token}`");
    }
    // ...and the full structural validation: re-parse, required fields on
    // every event, monotonic non-overlapping spans per track.
    let stats = perfetto::validate(&text).unwrap();
    assert!(stats.spans > 0, "{stats:?}");
    assert!(stats.counters > 0, "{stats:?}");
    assert!(stats.events > stats.spans, "{stats:?}");
    // One process per chiplet plus the package process.
    let doc = perfetto::parse_json(&text).unwrap();
    let perfetto::Json::Arr(events) = doc.get("traceEvents").unwrap().clone() else {
        panic!("traceEvents is not an array");
    };
    let processes: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| e.get("pid").and_then(perfetto::Json::as_f64))
        .map(|p| p as u64)
        .collect();
    assert!(processes.contains(&perfetto::PACKAGE_PID));
    assert!(processes.len() >= 2, "{processes:?}");
}

#[test]
fn bench_writes_a_parseable_snapshot() {
    let model = tiny_model();
    let out = tmp("BENCH_tiny.json");
    let (ok, stdout, stderr) = baton(&[
        "bench",
        model.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("bench tiny:"), "{stdout}");
    let snap = BenchSnapshot::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(snap.strs["name"], "tiny");
    assert_eq!(snap.strs["model"], "tiny");
    for key in [
        "schema",
        "wall_ms.total",
        "throughput.evals_per_sec",
        "throughput.mappings_per_sec",
        "counter.baton_evaluations_total",
        "phase.search_layer.total_ms",
    ] {
        assert!(snap.nums.contains_key(key), "missing `{key}` in {snap:?}");
    }
}

#[test]
fn bench_baseline_gates_on_injected_regression() {
    let model = tiny_model();
    let out = tmp("BENCH_gate.json");
    let (ok, _, stderr) = baton(&[
        "bench",
        model.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let snap = BenchSnapshot::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();

    // A baseline this machine can never beat: the current run is an
    // injected slowdown by construction -> the gate must fail non-zero.
    let mut impossible = snap.clone();
    for (key, v) in impossible.nums.iter_mut() {
        if key.starts_with("throughput.") {
            *v *= 1e6;
        } else if key == "wall_ms.total" || key.ends_with(".total_ms") {
            *v /= 1e6;
        }
    }
    let fast = tmp("BENCH_impossible.json");
    std::fs::write(&fast, impossible.to_json()).unwrap();
    let (ok, _, stderr) = baton(&[
        "bench",
        model.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--baseline",
        fast.to_str().unwrap(),
        "--max-regress",
        "50",
    ]);
    assert!(!ok, "impossible baseline must gate");
    assert!(stderr.contains("regressed beyond 50%"), "{stderr}");
    assert!(stderr.contains("regression:"), "{stderr}");

    // An infinitely forgiving baseline passes: same file, huge tolerance.
    let (ok, stdout, stderr) = baton(&[
        "bench",
        model.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--baseline",
        fast.to_str().unwrap(),
        "--max-regress",
        "1e12",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn profile_json_emits_one_flat_object() {
    let model = tiny_model();
    let (ok, stdout, stderr) = baton(&["profile", model.to_str().unwrap(), "--json"]);
    assert!(ok, "{stderr}");
    let obj = parse_flat_object(stdout.trim()).unwrap();
    assert_eq!(obj["name"].as_str(), Some("profile"));
    assert_eq!(obj["model"].as_str(), Some("tiny"));
    assert!(
        obj.contains_key("counter.baton_evaluations_total"),
        "{obj:?}"
    );
    assert!(obj.contains_key("phase.search_layer.total_ms"), "{obj:?}");
}

#[test]
fn flag_errors_name_the_subcommand_and_its_flags() {
    let (ok, _, stderr) = baton(&["map", "alexnet", "--nope"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown flag `--nope` for `map`"),
        "{stderr}"
    );
    assert!(stderr.contains("--trace-perfetto"), "{stderr}");
    // A flag that exists elsewhere is still rejected here, with the list.
    let (ok, _, stderr) = baton(&["explain", "alexnet", "--csv", "x.csv"]);
    assert!(!ok);
    assert!(stderr.contains("for `explain`"), "{stderr}");
    assert!(stderr.contains("--format"), "{stderr}");
    let (ok, _, stderr) = baton(&["stats", "alexnet", "--macs", "4096"]);
    assert!(!ok);
    assert!(stderr.contains("valid: --res"), "{stderr}");
}

#[test]
fn output_paths_are_validated_before_model_work() {
    // A missing parent directory must fail fast, before any search runs.
    let bad = "/nonexistent-baton-dir/out.json";
    let t0 = std::time::Instant::now();
    let (ok, _, stderr) = baton(&["bench", "vgg16", "--out", bad]);
    assert!(!ok);
    assert!(stderr.contains("cannot write"), "{stderr}");
    let (ok, _, stderr) = baton(&["map", "vgg16", "--csv", "/nonexistent-baton-dir/x.csv"]);
    assert!(!ok);
    assert!(stderr.contains("cannot write"), "{stderr}");
    // Mapping vgg16 twice takes tens of seconds; failing fast stays far
    // under that even on a loaded machine.
    assert!(t0.elapsed().as_secs() < 20, "not validated early");
    // bench without --out is an error too.
    let (ok, _, stderr) = baton(&["bench", "alexnet"]);
    assert!(!ok);
    assert!(stderr.contains("bench needs --out"), "{stderr}");
}
