//! Property-based tests on the framework's core invariants, driven by
//! randomized layers, machines and mappings.

use nn_baton::c3p::{self, AccessProfile, Breakpoint};
use nn_baton::mapping::{decompose, enumerate};
use nn_baton::model::{planar_redundancy, PlanarGrid};
use nn_baton::prelude::*;
use proptest::prelude::*;

/// A bounded random convolution layer.
fn arb_layer() -> impl Strategy<Value = ConvSpec> {
    (
        8u32..=64, // hi == wi
        1u32..=64, // ci
        prop_oneof![Just(1u32), Just(3), Just(5), Just(7)],
        1u32..=2,   // stride
        4u32..=128, // co
    )
        .prop_filter_map("kernel fits", |(hw, ci, k, s, co)| {
            let pad = k / 2;
            ConvSpec::new("prop", hw, hw, ci, k, s, pad, co).ok()
        })
}

/// A bounded random machine around the case-study scale.
fn arb_arch() -> impl Strategy<Value = PackageConfig> {
    (
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        prop_oneof![Just(2u32), Just(4), Just(8)],
        prop_oneof![Just(4u32), Just(8), Just(16)],
        prop_oneof![Just(4u32), Just(8)],
        1u64..=4,
    )
        .prop_map(|(np, nc, l, p, mem_scale)| {
            let core =
                nn_baton::arch::CoreConfig::new(l, p, 1536, 800 * mem_scale, 18 * 1024 * mem_scale);
            let chiplet =
                nn_baton::arch::ChipletConfig::new(nc, core, 64 * 1024 * mem_scale, 64 * 1024);
            PackageConfig::new(np, chiplet)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiling never loses or duplicates output work: the loop structure
    /// covers at least the whole output cube (ceil rounding may add idle
    /// slots but never drops work), and every resolved DRAM read covers the
    /// unique tensor volumes.
    #[test]
    fn dram_reads_cover_unique_volumes(layer in arb_layer(), arch in arb_arch()) {
        let tech = Technology::paper_16nm();
        if let Ok(ev) = search_layer(&layer, &arch, &tech, Objective::Energy) {
            // Strided 1x1 convolutions subsample the input, so the floor is
            // the consumed volume (one window element per output position),
            // not the full input tensor.
            let consumed_floor =
                u64::from(layer.ho()) * u64::from(layer.wo()) * u64::from(layer.ci()) * 8
                    / u64::from(arch.chiplets).max(1);
            prop_assert!(ev.access.dram_input_bits >= consumed_floor);
            prop_assert!(ev.access.dram_weight_bits >= layer.weight_bits());
            prop_assert_eq!(ev.access.dram_output_bits, layer.output_bits());
            prop_assert!(ev.access.mac_ops == layer.macs());
        }
    }

    /// A-L2 fills are exactly the sum of DRAM- and ring-sourced arrivals
    /// (conservation at the chiplet boundary).
    #[test]
    fn input_arrival_conservation(layer in arb_layer(), arch in arb_arch()) {
        let tech = Technology::paper_16nm();
        for m in enumerate::candidates(&layer, &arch).into_iter().take(12) {
            if let Ok(d) = decompose(&layer, &arch, &m) {
                let v = &d.volumes;
                prop_assert_eq!(
                    v.a_l2_fill_base,
                    v.dram_input_base + v.d2d_input_base,
                    "mapping {}", m
                );
                let _ = c3p::evaluate_decomposition(&d, &arch, &tech, &m);
            }
        }
    }

    /// Footprint tables are monotone outward and aligned with the nest.
    #[test]
    fn footprints_monotone(layer in arb_layer(), arch in arb_arch()) {
        for m in enumerate::candidates(&layer, &arch).into_iter().take(12) {
            if let Ok(d) = decompose(&layer, &arch, &m) {
                prop_assert_eq!(d.footprints.chiplet_input.len(), d.nest.len() + 1);
                for w in d.footprints.chiplet_input.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
                for w in d.footprints.stream_weight.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
                for w in d.footprints.core_input.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
            }
        }
    }

    /// Access profiles are monotone non-increasing in buffer capacity.
    #[test]
    fn profile_monotonicity(
        base in 1u64..1_000_000,
        caps in proptest::collection::vec((1u64..1_000_000, 2u64..64), 0..6)
    ) {
        let bps: Vec<Breakpoint> = caps
            .iter()
            .map(|&(c, m)| Breakpoint { min_capacity_bits: c, multiplier: m })
            .collect();
        let p = AccessProfile::new(base, bps);
        let mut last = u64::MAX;
        for cap in [0u64, 1 << 8, 1 << 12, 1 << 16, 1 << 20, u64::MAX] {
            let a = p.access_bits(cap);
            prop_assert!(a <= last);
            last = a;
        }
        prop_assert_eq!(p.access_bits(u64::MAX), base);
    }

    /// Bigger buffers never increase any resolved access path.
    #[test]
    fn capacity_monotonicity_end_to_end(layer in arb_layer()) {
        let tech = Technology::paper_16nm();
        let small = presets::case_study_accelerator();
        let mut big = small;
        big.chiplet.core.a_l1_bytes *= 4;
        big.chiplet.core.w_l1_bytes *= 4;
        big.chiplet.a_l2_bytes *= 4;
        for m in enumerate::candidates(&layer, &small).into_iter().take(8) {
            let (Ok(evs), Ok(evb)) = (
                c3p::evaluate(&layer, &small, &tech, &m),
                c3p::evaluate(&layer, &big, &tech, &m),
            ) else { continue };
            prop_assert!(evb.access.dram_input_bits <= evs.access.dram_input_bits);
            prop_assert!(evb.access.dram_weight_bits <= evs.access.dram_weight_bits);
            prop_assert!(evb.access.d2d_bits <= evs.access.d2d_bits);
            prop_assert!(evb.access.a_l2_bits <= evs.access.a_l2_bits);
        }
    }

    /// Planar tiling geometry: fetched >= unique, single tile is exact, and
    /// refining the grid never reduces the fetched volume.
    #[test]
    fn halo_geometry(layer in arb_layer(), r in 1u32..8, c in 1u32..8) {
        let one = planar_redundancy(&layer, PlanarGrid::new(1, 1));
        prop_assert_eq!(one.fetched_elems, one.unique_elems);
        // Halo semantics assume no subsampling: when the stride exceeds the
        // kernel, tiling legitimately skips input rows/columns between
        // windows and can fetch *less* than the single-window span.
        if layer.stride_h() <= layer.kh() && layer.stride_w() <= layer.kw() {
            let grid = planar_redundancy(&layer, PlanarGrid::new(r, c));
            prop_assert!(grid.fetched_elems >= grid.unique_elems);
            let finer = planar_redundancy(&layer, PlanarGrid::new(r * 2, c * 2));
            prop_assert!(finer.fetched_elems >= grid.fetched_elems);
        }
    }

    /// The DES is deterministic and never beats the compute critical path
    /// by more than the discretization slack.
    #[test]
    fn des_sanity(layer in arb_layer()) {
        let arch = presets::case_study_accelerator();
        let tech = Technology::paper_16nm();
        if let Ok(best) = search_layer(&layer, &arch, &tech, Objective::Energy) {
            let a = simulate(&layer, &arch, &tech, &best.mapping).unwrap();
            let b = simulate(&layer, &arch, &tech, &best.mapping).unwrap();
            prop_assert_eq!(a, b);
            prop_assert!(a.total_cycles + a.tiles_per_chiplet >= best.compute_cycles);
            prop_assert!(a.utilization <= 1.0);
        }
    }

    /// The search winner is optimal within its own candidate set.
    #[test]
    fn search_optimality(layer in arb_layer()) {
        let arch = presets::case_study_accelerator();
        let tech = Technology::paper_16nm();
        if let Ok(best) = search_layer(&layer, &arch, &tech, Objective::Energy) {
            for m in enumerate::candidates(&layer, &arch).into_iter().take(16) {
                if let Ok(ev) = c3p::evaluate(&layer, &arch, &tech, &m) {
                    prop_assert!(best.energy.total_pj() <= ev.energy.total_pj() + 1e-6);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The functional simulator agrees bit-exactly with the reference
    /// convolution for randomly drawn layers and mappings — the orchestration
    /// is semantics-preserving, not just count-preserving.
    #[test]
    fn mapped_execution_is_bit_exact(layer in arb_small_layer(), pick in 0usize..64) {
        use nn_baton::func::{reference_conv, run_mapping, Tensor3, Tensor4};
        let arch = presets::case_study_accelerator();
        let input = Tensor3::counting(layer.hi(), layer.wi(), layer.ci());
        let weights =
            Tensor4::counting(layer.kh(), layer.kw(), layer.ci_per_group(), layer.co());
        let golden = reference_conv(&layer, &input, &weights, 6);
        let cands = enumerate::candidates(&layer, &arch);
        if cands.is_empty() {
            return Ok(());
        }
        let m = cands[pick % cands.len()];
        if decompose(&layer, &arch, &m).is_ok() {
            let got = run_mapping(&layer, &arch, &m, &input, &weights, 6)
                .expect("feasible mapping executes");
            prop_assert_eq!(got, golden, "{}", m);
        }
    }

    /// The coverage verifier agrees with the functional executor: any
    /// decomposable mapping is an exact partition of the output cube.
    #[test]
    fn decomposable_mappings_partition_exactly(layer in arb_small_layer(), pick in 0usize..64) {
        use nn_baton::mapping::verify_coverage;
        let arch = presets::case_study_accelerator();
        let cands = enumerate::candidates(&layer, &arch);
        if cands.is_empty() {
            return Ok(());
        }
        let m = cands[pick % cands.len()];
        if decompose(&layer, &arch, &m).is_ok() {
            let cov = verify_coverage(&layer, &arch, &m);
            prop_assert!(cov.is_exact(), "{}: {:?}", m, cov);
            prop_assert_eq!(cov.total, layer.output_elems());
        }
    }
}

/// A small random layer for the exhaustive functional checks.
fn arb_small_layer() -> impl Strategy<Value = ConvSpec> {
    (
        6u32..=16,
        1u32..=12,
        prop_oneof![Just(1u32), Just(3), Just(5)],
        1u32..=2,
        4u32..=24,
    )
        .prop_filter_map("kernel fits", |(hw, ci, k, s, co)| {
            ConvSpec::new("fprop", hw, hw, ci, k, s, k / 2, co).ok()
        })
}

// ---------------------------------------------------------------------------
// Response-cache key canonicalization (`serve::cache_key_for`)
// ---------------------------------------------------------------------------

/// The `config.layer` field as a client can spell it: a JSON number, a
/// numeric string (same selection as the number), or a layer name.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LayerField {
    Index(u32),
    NumStr(u32),
    Name(&'static str),
}

/// One semantic mapping request, fields optional exactly where the HTTP
/// body may omit them.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MapFields {
    model: &'static str,
    res: Option<u32>,
    top: Option<usize>,
    objective: Option<&'static str>,
    layer: Option<LayerField>,
}

impl MapFields {
    /// The request with defaults applied and layer spelling collapsed —
    /// the independent oracle for "same work": two bodies must share a
    /// cache key iff their canonical forms compare equal.
    fn canonical(&self) -> (String, u32, usize, &'static str, String) {
        let layer = match &self.layer {
            None => "*".to_string(),
            Some(LayerField::Index(i) | LayerField::NumStr(i)) => format!("#{i}"),
            Some(LayerField::Name(n)) => format!("n:{n}"),
        };
        (
            self.model.to_string(),
            self.res.unwrap_or(224),
            self.top.unwrap_or(3),
            self.objective.unwrap_or("energy"),
            layer,
        )
    }
}

fn arb_map_fields() -> impl Strategy<Value = MapFields> {
    (0usize..6, 0usize..6, 0usize..5, 0usize..4, 0usize..8).prop_map(
        |(model, res, top, objective, layer)| MapFields {
            model: [
                "alexnet",
                "vgg16",
                "resnet50",
                "darknet19",
                "mobilenet_v2",
                "yolo_v2",
            ][model],
            res: (res > 0).then(|| [32, 64, 224, 1000, 4096][res - 1]),
            top: (top > 0).then(|| [1, 3, 7, 100][top - 1]),
            objective: (objective > 0).then(|| ["energy", "edp", "runtime"][objective - 1]),
            layer: match layer {
                0 | 1 => None,
                2 => Some(LayerField::Index(0)),
                3 => Some(LayerField::Index(7)),
                4 => Some(LayerField::NumStr(0)),
                5 => Some(LayerField::NumStr(7)),
                6 => Some(LayerField::Name("conv1")),
                _ => Some(LayerField::Name("fire_x")),
            },
        },
    )
}

/// Renders `fields` as a JSON body. `perm` rotates the config field
/// order; `style` bits toggle spelled-out defaults, extra whitespace, and
/// model-before/after-config — every spelling a well-behaved client might
/// produce for the same request.
fn render_body(fields: &MapFields, perm: usize, style: usize) -> String {
    let spell = style & 1 != 0;
    let pad = if style & 2 != 0 { " " } else { "" };
    let model_first = style & 4 == 0;

    let mut cfg: Vec<String> = Vec::new();
    match fields.res {
        Some(r) => cfg.push(format!("\"res\":{pad}{r}")),
        None if spell => cfg.push(format!("\"res\":{pad}224")),
        None => {}
    }
    match fields.top {
        Some(t) => cfg.push(format!("\"top\":{pad}{t}")),
        None if spell => cfg.push(format!("\"top\":{pad}3")),
        None => {}
    }
    match fields.objective {
        Some(o) => cfg.push(format!("\"objective\":{pad}\"{o}\"")),
        None if spell => cfg.push(format!("\"objective\":{pad}\"energy\"")),
        None => {}
    }
    // `layer` has no spelled default: omission means "all layers".
    match &fields.layer {
        Some(LayerField::Index(i)) => cfg.push(format!("\"layer\":{pad}{i}")),
        Some(LayerField::NumStr(i)) => cfg.push(format!("\"layer\":{pad}\"{i}\"")),
        Some(LayerField::Name(n)) => cfg.push(format!("\"layer\":{pad}\"{n}\"")),
        None => {}
    }
    if !cfg.is_empty() {
        let shift = perm % cfg.len();
        cfg.rotate_left(shift);
    }

    let model = format!("\"model\":{pad}\"{}\"", fields.model);
    let mut parts = Vec::new();
    if model_first {
        parts.push(model.clone());
    }
    // An empty config object and a missing one must mean the same thing;
    // emit the empty object only sometimes.
    if !cfg.is_empty() || spell {
        parts.push(format!(
            "\"config\":{pad}{{{pad}{}{pad}}}",
            cfg.join(&format!(",{pad}"))
        ));
    }
    if !model_first {
        parts.push(model);
    }
    format!("{{{pad}{}{pad}}}", parts.join(&format!(",{pad}")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Spelling does not split the cache: bodies differing only in field
    /// order, whitespace, spelled-out defaults, or numeric-string layer
    /// indices produce the same key.
    #[test]
    fn cache_keys_ignore_request_spelling(
        fields in arb_map_fields(),
        perm in 0usize..8,
        style in 0usize..8,
        style2 in 0usize..8,
    ) {
        let plain = render_body(&fields, 0, 0);
        let styled = render_body(&fields, perm, style);
        let restyled = render_body(&fields, perm.wrapping_add(3), style2);
        let key = nn_baton::serve::cache_key_for("/map", &plain)
            .expect("rendered body parses");
        prop_assert_eq!(
            &key,
            &nn_baton::serve::cache_key_for("/map", &styled).unwrap(),
            "plain={} styled={}", plain, styled
        );
        prop_assert_eq!(
            &key,
            &nn_baton::serve::cache_key_for("/map", &restyled).unwrap(),
            "plain={} restyled={}", plain, restyled
        );
    }

    /// Semantics drive the key: two requests share a key iff their
    /// canonical (defaults-applied) forms are equal — a semantic
    /// difference in any field always separates them.
    #[test]
    fn cache_keys_separate_distinct_requests(
        a in arb_map_fields(),
        b in arb_map_fields(),
        style_a in 0usize..8,
        style_b in 0usize..8,
    ) {
        let key_a = nn_baton::serve::cache_key_for("/map", &render_body(&a, 1, style_a)).unwrap();
        let key_b = nn_baton::serve::cache_key_for("/map", &render_body(&b, 2, style_b)).unwrap();
        prop_assert_eq!(
            key_a == key_b,
            a.canonical() == b.canonical(),
            "a={:?} b={:?}", a, b
        );
        // The endpoint is part of the key.
        let other = nn_baton::serve::cache_key_for("/explain", &render_body(&a, 1, style_a)).unwrap();
        prop_assert_ne!(key_a, other);
    }
}
