//! Cross-validation of the discrete-event simulator against the analytical
//! runtime bound of the C3P engine.

use nn_baton::prelude::*;

fn setup() -> (PackageConfig, Technology) {
    (presets::case_study_accelerator(), Technology::paper_16nm())
}

/// The DES includes everything the analytical bound includes, so its total
/// can never undercut the bound by more than the tile-rounding slack.
#[test]
fn des_is_bounded_below_by_the_analytical_model() {
    let (arch, tech) = setup();
    for model in [zoo::vgg16(224), zoo::resnet50(224)] {
        for layer in model.layers().iter().step_by(3) {
            let Ok(best) = search_layer(layer, &arch, &tech, Objective::Energy) else {
                continue;
            };
            let sim = simulate(layer, &arch, &tech, &best.mapping).unwrap();
            assert!(
                sim.total_cycles + 2 * sim.tiles_per_chiplet >= best.compute_cycles,
                "{}: DES {} < analytical compute {}",
                layer.name(),
                sim.total_cycles,
                best.compute_cycles
            );
        }
    }
}

/// On compute-bound layers the two models agree within pipeline fill/drain.
#[test]
fn agreement_on_compute_bound_layers() {
    let (arch, tech) = setup();
    let mut checked = 0;
    for layer in zoo::vgg16(224).layers() {
        let Ok(best) = search_layer(layer, &arch, &tech, Objective::Energy) else {
            continue;
        };
        // Compute-bound: analytical runtime equals the compute path.
        if best.cycles != best.compute_cycles {
            continue;
        }
        let sim = simulate(layer, &arch, &tech, &best.mapping).unwrap();
        let ratio = sim.total_cycles as f64 / best.cycles as f64;
        assert!(
            (0.9..2.5).contains(&ratio),
            "{}: DES/analytical = {ratio}",
            layer.name()
        );
        checked += 1;
    }
    assert!(checked >= 3, "only {checked} compute-bound layers found");
}

/// Starving a bandwidth resource moves both models in the same direction,
/// with the DES at least as pessimistic.
#[test]
fn bandwidth_starvation_tracks() {
    let (arch, mut tech) = setup();
    let layer = zoo::resnet50(224).layer("res2a_branch2a").cloned().unwrap();
    let best = search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
    let base_sim = simulate(&layer, &arch, &tech, &best.mapping).unwrap();

    tech.bandwidth.dram_bits_per_cycle = 2;
    let slow_eval = nn_baton::c3p::evaluate(&layer, &arch, &tech, &best.mapping).unwrap();
    let slow_sim = simulate(&layer, &arch, &tech, &best.mapping).unwrap();
    assert!(slow_eval.cycles > best.cycles);
    assert!(slow_sim.total_cycles > base_sim.total_cycles);
    // The DES serializes load/writeback on the same channel, so it is at
    // least as slow as the aggregate-bandwidth bound.
    assert!(
        slow_sim.total_cycles as f64 >= 0.9 * slow_eval.cycles as f64,
        "DES {} vs analytical {}",
        slow_sim.total_cycles,
        slow_eval.cycles
    );
}

/// The DES stall accounting is self-consistent: total = compute + stall.
#[test]
fn stall_accounting_is_consistent() {
    let (arch, tech) = setup();
    for (_, layer) in zoo::representative_layers(224) {
        let best = search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
        let sim = simulate(&layer, &arch, &tech, &best.mapping).unwrap();
        assert_eq!(
            sim.total_cycles,
            sim.compute_cycles + sim.stall_cycles,
            "{}",
            layer.name()
        );
        assert!(sim.dram_busy <= sim.total_cycles);
        assert!(sim.bus_busy <= sim.total_cycles);
    }
}
