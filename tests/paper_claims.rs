//! The paper's headline quantitative claims, asserted end to end.

use nn_baton::arch::presets::ProportionalBuffers;
use nn_baton::prelude::*;

/// Abstract claim: "NN-Baton generates mapping strategies that save
/// 22.5%~44% energy [vs Simba] under the same computation and memory
/// configurations." We accept a slightly widened band for the
/// reconstructed baseline (recorded per benchmark in EXPERIMENTS.md).
#[test]
fn abstract_energy_saving_band() {
    let arch = presets::simba_4chiplet();
    let tech = Technology::paper_16nm();
    let mut all = Vec::new();
    for res in [224, 512] {
        for model in zoo::figure13_models(res) {
            let c = compare_model(&model, &arch, &tech);
            assert!(
                (0.15..0.50).contains(&c.saving()),
                "{} @{res}: {:.1}%",
                model.name(),
                100.0 * c.saving()
            );
            all.push(c.saving());
        }
    }
    let lo = all.iter().copied().fold(f64::MAX, f64::min);
    let hi = all.iter().copied().fold(f64::MIN, f64::max);
    // The band itself brackets the paper's 22.5-44%.
    assert!(lo < 0.235 && hi > 0.40, "band {lo:.3}..{hi:.3}");
}

/// Abstract claim: "For a 2048-MAC system under a 2 mm^2 chiplet area
/// constraint, the 4-chiplet implementation with 4 cores and 16 lanes of
/// 8-size vector-MAC is always the top-pick computation allocation."
#[test]
fn figure14_top_pick_is_4_4_16_8() {
    let tech = Technology::paper_16nm();
    for model in [zoo::resnet50(224), zoo::darknet19(224)] {
        let results = granularity_sweep(
            &model,
            &tech,
            2048,
            &ProportionalBuffers::default(),
            Some(2.0),
        );
        // No 1-chiplet implementation fits the budget.
        assert!(
            results
                .iter()
                .filter(|r| r.geometry.0 == 1)
                .all(|r| !r.meets_area),
            "{}",
            model.name()
        );
        // 4-4-16-8 is the best 4-chiplet EDP.
        let best4 = results
            .iter()
            .filter(|r| r.geometry.0 == 4 && r.meets_area)
            .min_by(|a, b| a.edp(&tech).total_cmp(&b.edp(&tech)))
            .expect("a 4-chiplet design fits");
        assert_eq!(best4.geometry, (4, 4, 16, 8), "{}", model.name());
    }
}

/// Section VI-B.1: "without any area constraint, the energy consumption is
/// generally higher with more chiplets."
#[test]
fn energy_grows_with_chiplet_count_without_constraint() {
    let tech = Technology::paper_16nm();
    let model = zoo::resnet50(224);
    let results = granularity_sweep(&model, &tech, 2048, &ProportionalBuffers::default(), None);
    let best = |np: u32| {
        results
            .iter()
            .filter(|r| r.geometry.0 == np)
            .map(|r| r.energy_pj)
            .fold(f64::MAX, f64::min)
    };
    assert!(best(1) <= best(8) * 1.02);
    assert!(best(2) <= best(8) * 1.02);
}

/// Section IV-C / Figure 7: the square pattern beats the stripe pattern on
/// redundant access and the gap narrows with larger tiles.
#[test]
fn square_pattern_preference() {
    use nn_baton::model::{planar_redundancy, PlanarGrid};
    let layer = zoo::resnet50(512).layer("conv1").cloned().unwrap();
    let sq16 = planar_redundancy(&layer, PlanarGrid::new(4, 4)).overhead();
    let st16 = planar_redundancy(&layer, PlanarGrid::new(16, 1)).overhead();
    assert!(sq16 < st16);
    let sq256 = planar_redundancy(&layer, PlanarGrid::new(16, 16)).overhead();
    let st256 = planar_redundancy(&layer, PlanarGrid::new(256, 1)).overhead();
    assert!(sq256 < st256);
    // Relative gap shrinks as tiles get larger (coarser partitions).
    let gap_fine = st256 / sq256;
    let gap_coarse = st16 / sq16;
    assert!(gap_coarse < gap_fine);
}

/// Section VI-A: "the hybrid partition in the chiplet-level ((C, H) or
/// (P, H)) provides the overall lower energy overhead" -- across the five
/// representative layers, hybrid must win or tie the majority.
#[test]
fn hybrid_chiplet_partition_wins_overall() {
    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    let mut hybrid_wins = 0;
    let mut total = 0;
    for res in [224, 512] {
        for (_, layer) in zoo::representative_layers(res) {
            let best = search_layer(&layer, &arch, &tech, Objective::Energy).unwrap();
            total += 1;
            let tag = best.mapping.spatial_tag();
            if tag.ends_with("H)") || tag.ends_with("P)") {
                hybrid_wins += 1;
            }
        }
    }
    assert!(
        hybrid_wins * 2 >= total,
        "hybrid/planar chiplet partitions won only {hybrid_wins}/{total}"
    );
}

/// Figure 15 conclusion: "the computation resource allocation depends more
/// on the area constraint while memory allocation is sensitive to the
/// target model." Two different models must pick the same compute geometry
/// but may differ in memory.
#[test]
fn dse_compute_allocation_is_model_independent() {
    let tech = Technology::paper_16nm();
    let mut opts = SweepOptions {
        total_macs: 2048,
        area_limit_mm2: Some(2.0),
        ..SweepOptions::default()
    };
    // A reduced memory grid for test runtime.
    opts.space.memory.o_l1 = vec![144];
    opts.space.memory.a_l1 = vec![1024, 4 * 1024, 32 * 1024];
    opts.space.memory.w_l1 = vec![18 * 1024, 72 * 1024];
    opts.space.memory.a_l2 = vec![64 * 1024, 128 * 1024];

    let slice = |m: &nn_baton::model::Model, names: &[&str]| {
        nn_baton::model::Model::new(
            format!("{}-slice", m.name()),
            m.input_resolution(),
            names.iter().map(|n| m.layer(n).unwrap().clone()).collect(),
        )
    };
    let m1 = slice(&zoo::resnet50(224), &["res2a_branch2b", "res4a_branch2a"]);
    let m2 = slice(&zoo::darknet19(224), &["conv3", "conv14"]);

    let best_geom = |model: &nn_baton::model::Model| {
        full_sweep(model, &tech, &opts)
            .into_iter()
            .filter(|p| p.chiplet_area_mm2 <= 2.0)
            .min_by(|a, b| a.edp(&tech).total_cmp(&b.edp(&tech)))
            .map(|p| p.geometry)
            .expect("feasible design")
    };
    // Full-model sweeps pick the identical compute tuple across benchmarks
    // (demonstrated by `cargo bench --bench fig15_dse` and recorded in
    // EXPERIMENTS.md); the 2-layer test slices used here for speed agree on
    // the structural conclusion -- a multi-chiplet design wins under the
    // area budget -- though the exact tuple may differ between slices.
    let g1 = best_geom(&m1);
    let g2 = best_geom(&m2);
    assert!(g1.0 >= 2, "{g1:?}");
    assert!(g2.0 >= 2, "{g2:?}");
}

/// Figure 11: the package-level spatial preference flips with the layer
/// type — P-type for activation-intensive/large-kernel layers (halo
/// aggregation), C-type for weight-intensive/common layers.
#[test]
fn figure11_package_preferences_flip_by_layer_type() {
    use nn_baton::c3p;
    use nn_baton::mapping::enumerate::{candidates_with, EnumOptions};

    let arch = presets::case_study_accelerator();
    let tech = Technology::paper_16nm();
    // The Figure 11 study assumes the paper's rotating transfer; the
    // DRAM-only fallback is our ablation and is excluded here.
    let opts = EnumOptions {
        rotations: &[RotationMode::Ring],
        ..EnumOptions::default()
    };
    let best_by_pkg = |layer: &ConvSpec, tag: char| -> f64 {
        let mut best = f64::MAX;
        for m in candidates_with(layer, &arch, opts) {
            if m.spatial_tag().chars().nth(1) != Some(tag) {
                continue;
            }
            if let Ok(ev) = c3p::evaluate(layer, &arch, &tech, &m) {
                best = best.min(ev.energy.total_pj());
            }
        }
        best
    };
    let layers = zoo::representative_layers(512);
    let pick = |b: &str| layers.iter().find(|(k, _)| k == b).unwrap().1.clone();

    for bucket in ["activation-intensive", "large-kernel"] {
        let l = pick(bucket);
        assert!(
            best_by_pkg(&l, 'P') <= best_by_pkg(&l, 'C'),
            "{bucket}: expected P-type package to win"
        );
    }
    for bucket in ["weight-intensive", "common"] {
        let l = pick(bucket);
        assert!(
            best_by_pkg(&l, 'C') <= best_by_pkg(&l, 'P'),
            "{bucket}: expected C-type package to win"
        );
    }
}
