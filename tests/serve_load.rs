//! Concurrency harness for `baton serve`: keep-alive stress with cache
//! reconciliation, queue-full backpressure, per-connection request limits,
//! and graceful drain — all against the real binary over raw TCP.
//!
//! The worker-thread count under test comes from `BATON_SERVE_THREADS`
//! (default 2); CI runs this harness at 1 and 4 to pin down both the
//! single-worker and the contended schedules.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// Worker threads for the server under test (CI sweeps 1 and 4).
fn serve_threads() -> String {
    std::env::var("BATON_SERVE_THREADS").unwrap_or_else(|_| "2".to_string())
}

/// The serve process under test. Keeps the stdout pipe open for the
/// process lifetime (the drain path prints a final summary line; a closed
/// pipe would turn that print into a panic). Killed on drop so a failing
/// assertion never leaks a listener.
struct Server {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server(threads: &str, extra: &[&str]) -> Server {
    let mut args = vec!["serve", "--addr", "127.0.0.1:0", "--threads", threads];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_baton"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn baton serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected listen line: {line:?}"))
        .to_string();
    Server {
        child,
        addr,
        stdout,
    }
}

/// Reads one HTTP/1.1 response off `reader`: returns (status, headers,
/// body, server-asked-to-close).
fn read_response(
    reader: &mut BufReader<TcpStream>,
) -> std::io::Result<(u16, String, String, bool)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "closed"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line:?}"));
    let mut headers = String::new();
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.trim().is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        } else if let Some(v) = lower.strip_prefix("connection:") {
            close = v.trim() == "close";
        }
        headers.push_str(&line);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((
        status,
        headers,
        String::from_utf8_lossy(&body).into_owned(),
        close,
    ))
}

/// A persistent keep-alive connection sending requests back to back.
struct KeepAlive {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl KeepAlive {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let writer = stream.try_clone().expect("clone stream");
        KeepAlive {
            writer,
            reader: BufReader::new(stream),
        }
    }

    /// One request on the shared connection (no `Connection: close`, so the
    /// server keeps it open until its own limits say otherwise).
    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String, String, bool)> {
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes())?;
        read_response(&mut self.reader)
    }
}

/// One request over a fresh connection; returns (status, headers, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut conn = KeepAlive::connect(addr);
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.writer
        .write_all(req.as_bytes())
        .expect("write request");
    let (status, headers, body, _) = read_response(&mut conn.reader).expect("read response");
    (status, headers, body)
}

fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _, body) = request(addr, "GET", "/readyz", "");
        if status == 200 {
            return;
        }
        assert_eq!(status, 503, "readyz must be 503 until warm");
        assert!(
            Instant::now() < deadline,
            "server never became ready: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The value of an unlabelled counter/gauge series in an exposition.
fn metric(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|v| v.trim().parse::<f64>().expect("numeric sample") as u64)
        .unwrap_or(0)
}

/// Sum of a metric's samples: `name` may be a bare family name (sums every
/// label combination) or carry an explicit `{...}` label set (matches that
/// one series).
fn metric_sum(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix(name)?;
            let value = if let Some(labels) = rest.strip_prefix('{') {
                labels.split_once('}')?.1
            } else if rest.starts_with(' ') {
                rest
            } else {
                return None; // a longer name sharing this prefix
            };
            value.trim().parse::<f64>().ok()
        })
        .map(|v| v as u64)
        .sum()
}

fn scrape(addr: &str) -> String {
    let (status, _, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body
}

/// N client threads hammer `/map` over keep-alive connections with a mix
/// of repeated (cacheable) and distinct requests. Every response must be
/// 200 or 429; cache hits + misses reconcile exactly with the 200s served
/// on the mapping endpoints; bodies for one canonical request are
/// byte-identical whether cold or cached; and a guaranteed hit does not
/// advance the search histogram.
#[test]
fn concurrent_load_reconciles_with_cache_metrics() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 12;
    const DISTINCT_KEYS: usize = 3;

    let server = start_server(&serve_threads(), &[]);
    let addr = server.addr.as_str();
    wait_ready(addr);

    let before = scrape(addr);
    let hits0 = metric(&before, "baton_response_cache_hits_total");
    let misses0 = metric(&before, "baton_response_cache_misses_total");

    /// Per-client outcome: every status observed, plus (key, body) for
    /// each 200 so bodies can be compared across clients afterwards.
    type ClientOutcome = (Vec<u16>, Vec<(usize, String)>);

    // Each client rotates through DISTINCT_KEYS request shapes (varying
    // `top`), phase-shifted per client, so every key sees both cold and
    // cached service under contention. Bodies spell fields in different
    // orders per client to exercise canonicalization end to end.
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut conn = KeepAlive::connect(addr);
                    let mut statuses = Vec::new();
                    let mut bodies = Vec::new();
                    for i in 0..REQUESTS_PER_CLIENT {
                        let top = 1 + (c + i) % DISTINCT_KEYS;
                        let body = if c % 2 == 0 {
                            format!(
                                "{{\"model\": \"alexnet\", \"config\": {{\"res\": 32, \"layer\": 0, \"top\": {top}}}}}"
                            )
                        } else {
                            format!(
                                "{{\"config\":{{\"top\":{top},\"layer\":0,\"res\":32}},\"model\":\"alexnet\"}}"
                            )
                        };
                        match conn.send("POST", "/map", &body) {
                            Ok((status, _, resp, close)) => {
                                statuses.push(status);
                                if status == 200 {
                                    bodies.push((top, resp));
                                }
                                if close {
                                    conn = KeepAlive::connect(addr);
                                }
                            }
                            Err(e) => panic!("client {c} request {i}: {e}"),
                        }
                    }
                    (statuses, bodies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut ok = 0u64;
    let mut rejected = 0u64;
    for (statuses, _) in &outcomes {
        for &status in statuses {
            match status {
                200 => ok += 1,
                429 => rejected += 1,
                other => panic!("response must be 200 or 429, got {other}"),
            }
        }
    }
    assert_eq!(
        ok + rejected,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "every request sent must be answered"
    );
    assert!(ok > 0, "at least the cold requests must succeed");

    // Cached bodies are byte-identical to cold ones: every 200 for the
    // same canonical request (same `top`) has the same bytes, across all
    // clients and both JSON spellings.
    for key in 1..=DISTINCT_KEYS {
        let all: Vec<&String> = outcomes
            .iter()
            .flat_map(|(_, bodies)| bodies)
            .filter(|(top, _)| *top == key)
            .map(|(_, body)| body)
            .collect();
        assert!(!all.is_empty(), "key top={key} never served");
        for body in &all {
            assert_eq!(
                *body, all[0],
                "top={key}: cached body diverged from cold body"
            );
        }
    }

    // Metric reconciliation: every 200 on the mapping endpoints did exactly
    // one cache probe, so Δhits + Δmisses == the 200s we observed (429s
    // are rejected by the acceptor and never reach the cache).
    let after = scrape(addr);
    let hits = metric(&after, "baton_response_cache_hits_total") - hits0;
    let misses = metric(&after, "baton_response_cache_misses_total") - misses0;
    assert_eq!(
        hits + misses,
        ok,
        "cache hits ({hits}) + misses ({misses}) must reconcile with 200s ({ok})"
    );
    assert!(
        misses >= DISTINCT_KEYS as u64,
        "each distinct key misses at least once, got {misses}"
    );
    assert!(hits > 0, "repeated requests must hit the cache");

    // A guaranteed hit skips the search stack entirely: the search
    // histogram count must not advance.
    let searches_before = metric_sum(&after, "baton_search_duration_seconds_count");
    let (status, _, _) = request(
        addr,
        "POST",
        "/map",
        "{\"model\": \"alexnet\", \"config\": {\"res\": 32, \"layer\": 0, \"top\": 1}}",
    );
    assert_eq!(status, 200);
    let last = scrape(addr);
    assert_eq!(
        metric_sum(&last, "baton_search_duration_seconds_count"),
        searches_before,
        "a cache hit must not run the search"
    );
    assert_eq!(
        metric(&last, "baton_response_cache_hits_total") - hits0,
        hits + 1,
        "the verification request must be a hit"
    );
    assert!(
        metric(&last, "baton_response_cache_entries") >= DISTINCT_KEYS as u64,
        "entry gauge must reflect the cached keys"
    );
}

/// With one worker and a depth-1 queue, a pinned worker plus one queued
/// connection saturates the server: further connects are answered 429 +
/// `Retry-After` immediately by the acceptor, and the server recovers to
/// 200s once the pinned request completes.
#[test]
fn saturated_server_answers_429_with_retry_after_and_recovers() {
    let threads = serve_threads();
    let server = start_server(&threads, &["--queue-depth", "1"]);
    let addr = server.addr.as_str();
    wait_ready(addr);

    let workers: usize = threads.parse().unwrap();
    // Pin every worker with a request whose body never arrives: the worker
    // blocks in the body read (bounded by the server's read deadline, far
    // longer than this test). Staggered, so each connection clears the
    // depth-1 queue (worker pops it) before the next one is offered.
    let junk = "x".repeat(40);
    let mut pinned: Vec<KeepAlive> = (0..workers)
        .map(|_| {
            let mut conn = KeepAlive::connect(addr);
            conn.writer
                .write_all(b"POST /map HTTP/1.1\r\nHost: t\r\nContent-Length: 40\r\n\r\n")
                .unwrap();
            std::thread::sleep(Duration::from_millis(150));
            conn
        })
        .collect();

    // Fill the depth-1 queue with one complete (but unserved) request.
    let mut queued = KeepAlive::connect(addr);
    queued
        .writer
        .write_all(
            format!("POST /map HTTP/1.1\r\nHost: t\r\nContent-Length: 40\r\n\r\n{junk}").as_bytes(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Saturated: the acceptor must shed everything else, without reading
    // the request (even a GET), and advertise when to come back.
    for attempt in 0..3 {
        let mut conn = KeepAlive::connect(addr);
        // No request bytes written: the 429 must not depend on them.
        let (status, headers, body, _) =
            read_response(&mut conn.reader).expect("read 429 response");
        assert_eq!(status, 429, "attempt {attempt} must be shed");
        assert!(
            headers.to_ascii_lowercase().contains("retry-after: 1"),
            "429 must carry Retry-After: {headers}"
        );
        assert!(body.contains("\"error\":"), "{body}");
    }

    // Release the pinned workers: their bodies arrive, the junk parses as
    // a 400, the queued request is then served, and the server recovers.
    for conn in &mut pinned {
        conn.writer.write_all(junk.as_bytes()).unwrap();
        let (status, _, _, _) = read_response(&mut conn.reader).expect("pinned response");
        assert_eq!(status, 400, "junk body must parse-fail, not hang");
    }
    let (status, _, _, _) = read_response(&mut queued.reader).expect("queued response");
    assert_eq!(status, 400);
    let (status, _, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "server must recover after the backlog clears");

    // The rejections are visible in the request metrics under the bounded
    // `rejected` label.
    let exposition = scrape(addr);
    assert!(
        metric_sum(
            &exposition,
            "baton_http_requests_total{code=\"429\",path=\"rejected\"}"
        ) >= 3,
        "429s must be counted:\n{exposition}"
    );
}

/// The per-connection request limit closes keep-alive connections: with
/// `--keep-alive-requests 2`, the second response announces the close and
/// the connection is gone afterwards.
#[test]
fn keep_alive_honors_the_per_connection_request_limit() {
    let server = start_server(&serve_threads(), &["--keep-alive-requests", "2"]);
    let addr = server.addr.as_str();
    wait_ready(addr);

    let mut conn = KeepAlive::connect(addr);
    let (status, _, _, close) = conn.send("GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert!(!close, "first response keeps the connection alive");
    let (status, _, _, close) = conn.send("GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert!(close, "the limit-reaching response must announce the close");
    // The server hangs up: a third request sees EOF (or a reset, if the
    // write raced the close).
    match conn.send("GET", "/healthz", "") {
        Err(_) => {}
        Ok((status, ..)) => panic!("connection must be closed after the limit, got {status}"),
    }
}

/// Readiness flips with the drain: `/readyz` answers 200 while serving,
/// then 503 `draining` the moment `/quitquitquit` is accepted — the
/// balancer-facing signal to stop routing — while connections already
/// being served still get their answer (and are told to close).
#[test]
fn readyz_flips_to_503_once_drain_begins() {
    // Two workers regardless of the env sweep: one keeps the probe
    // connection, the other is free to take /quitquitquit.
    let mut server = start_server("2", &[]);
    let addr = server.addr.as_str();
    wait_ready(addr);

    // A keep-alive probe established before the drain; its worker carries
    // it across the drain boundary.
    let mut probe = KeepAlive::connect(addr);
    let (status, _, body, close) = probe.send("GET", "/readyz", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(!close, "a ready server keeps the probe connection open");

    let (status, _, _) = request(addr, "POST", "/quitquitquit", "");
    assert_eq!(status, 200);

    // The already-connected probe now sees the server refuse readiness.
    let (status, _, body, close) = probe.send("GET", "/readyz", "").unwrap();
    assert_eq!(status, 503, "a draining server must fail readiness");
    assert!(body.contains("\"status\":\"draining\""), "{body}");
    assert!(close, "drain must close surviving connections");

    let status = server.child.wait().expect("wait for drained server");
    assert_eq!(status.code(), Some(0), "drain must exit cleanly");
}

/// Graceful drain: a request already being read when `/quitquitquit`
/// arrives still completes with a 200, new connects are then refused, and
/// the process exits 0 after printing its final snapshot line.
#[test]
fn quitquitquit_drains_in_flight_work_and_exits_zero() {
    // Two workers regardless of the env sweep: one holds the in-flight
    // request, the other must be free to serve /quitquitquit.
    let mut server = start_server("2", &[]);
    let addr = server.addr.as_str();
    wait_ready(addr);

    // In-flight: headers sent, body held back — the worker is mid-request.
    let body = "{\"model\": \"alexnet\", \"config\": {\"res\": 32, \"layer\": 0}}";
    let mut in_flight = KeepAlive::connect(addr);
    in_flight
        .writer
        .write_all(
            format!(
                "POST /map HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Trigger the drain on a second connection.
    let (status, _, drain_body) = request(addr, "POST", "/quitquitquit", "");
    assert_eq!(status, 200);
    assert!(
        drain_body.contains("\"status\":\"draining\""),
        "{drain_body}"
    );

    // The in-flight request completes normally (and is told to close).
    in_flight.writer.write_all(body.as_bytes()).unwrap();
    let (status, _, served, close) =
        read_response(&mut in_flight.reader).expect("in-flight response");
    assert_eq!(status, 200, "in-flight request must complete during drain");
    assert!(served.contains("\"layer\":\"conv1\""), "{served}");
    assert!(close, "drain must close surviving connections");

    // New connects are refused once the listener is gone.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Err(_) => break,
            Ok(_) => {
                assert!(
                    Instant::now() < deadline,
                    "listener still accepting after drain"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // The process exits on its own — code 0 — after the final snapshot.
    let status = server.child.wait().expect("wait for drained server");
    assert_eq!(status.code(), Some(0), "drain must exit cleanly");
    let mut rest = String::new();
    server.stdout.read_to_string(&mut rest).unwrap();
    assert!(
        rest.lines().any(|l| l.starts_with("drained:")),
        "final snapshot line missing from stdout: {rest:?}"
    );
}
